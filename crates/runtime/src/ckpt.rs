//! The runtime checkpoint store.
//!
//! The paper's recovery story distinguishes restarting a PE with *fresh*
//! state (§5.2 — the Trend Calculator deliberately runs without
//! checkpointing and pays a window-refill gap) from recovering it with its
//! operator state intact. This module supplies the latter: the kernel
//! periodically snapshots every checkpointable, `Up` PE into a
//! [`PeCheckpoint`] keyed by `(job, ADL PE index)` — the identity that
//! survives restarts, unlike [`PeId`]s which are minted fresh each time —
//! and [`crate::kernel::Kernel::restart_pe`] restores the newest snapshot
//! into the replacement process, falling back to fresh state when none
//! exists or the shape changed.
//!
//! Since checkpoint format v2 snapshots also capture the PE's input queues,
//! and the store keeps each slot as an *incremental chain*: a full base
//! snapshot plus per-interval deltas that re-store only the operators whose
//! state blob actually changed (dirty tracking via [`StateBlob`] digests).
//! A chain holds at most [`CheckpointPolicy::full_every`] snapshots — one
//! full base plus `full_every - 1` deltas; the save that would stack one
//! more delta instead compacts the chain back into a fresh full base,
//! bounding recovery-chain length (`full_every = 1` disables deltas
//! entirely). Alongside each snapshot the store records the sender-side
//! upstream-backup channel positions, so a restore can roll the sender's
//! duplicate-suppression counters back in lockstep with its state.
//!
//! The store models a highly available external service (the real system
//! would keep this in a distributed file system): host failures do not lose
//! checkpoints, only job cancellation discards them. What the service does
//! cost is *time* and *space*, captured by a [`StorageModel`]: saves are
//! issued with [`CheckpointStore::begin_save`] and only become visible
//! (restorable, upstream-backup-trimmable) once
//! [`CheckpointStore::poll_commits`] reaches `issue + write_latency(bytes)`
//! in sim-time, and a finite byte budget is enforced by deterministic
//! oldest-first eviction that never claims the only restorable chain of a
//! PE the kernel marks protected (its `Up` checkpointable PEs). Under a
//! finite budget, compaction *seals* the old chain head as a read-only
//! older generation instead of discarding it, so a restore whose newest
//! generation is unusable can fall back one or more generations
//! (`generations_back` on the restart record).
//!
//! [`StateBlob`]: sps_engine::StateBlob
//! [`PeId`]: crate::ids::PeId

use crate::broker::ChannelKey;
use crate::ids::JobId;
use bytes::Bytes;
use sps_engine::{OpCheckpoint, PeCheckpoint};
use sps_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Simulated storage cost model for the checkpoint service.
///
/// The default is the free, instant store of earlier revisions: zero
/// latency on both paths and an unbounded budget. With those defaults every
/// save issued by [`CheckpointStore::begin_save`] commits within the same
/// scheduling quantum, in issue order, so kernel behavior is byte-identical
/// to the synchronous store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct StorageModel {
    /// Fixed per-write latency in sim-milliseconds (seek/RPC cost).
    pub write_op_ms: u64,
    /// Write throughput in bytes per sim-millisecond; `0` = infinite.
    pub write_bytes_per_ms: u64,
    /// Fixed per-restore latency in sim-milliseconds.
    pub restore_op_ms: u64,
    /// Restore throughput in bytes per sim-millisecond; `0` = infinite.
    pub restore_bytes_per_ms: u64,
    /// Total serialized-byte budget across all chains; `0` = unbounded.
    /// A finite budget turns on sealed-generation retention and eviction.
    pub budget_bytes: usize,
}

impl StorageModel {
    fn latency(op_ms: u64, bytes_per_ms: u64, bytes: usize) -> SimDuration {
        let transfer = if bytes_per_ms == 0 {
            0
        } else {
            (bytes as u64).div_ceil(bytes_per_ms)
        };
        SimDuration::from_millis(op_ms + transfer)
    }

    /// Sim-time between a save being issued and the snapshot committing.
    pub fn write_latency(&self, bytes: usize) -> SimDuration {
        Self::latency(self.write_op_ms, self.write_bytes_per_ms, bytes)
    }

    /// Sim-time a restore spends reading `bytes` back before replay begins.
    pub fn restore_latency(&self, bytes: usize) -> SimDuration {
        Self::latency(self.restore_op_ms, self.restore_bytes_per_ms, bytes)
    }

    /// Builder: write-path cost (fixed per-op latency, throughput).
    pub fn with_write(mut self, op_ms: u64, bytes_per_ms: u64) -> Self {
        self.write_op_ms = op_ms;
        self.write_bytes_per_ms = bytes_per_ms;
        self
    }

    /// Builder: restore-path cost (fixed per-op latency, throughput).
    pub fn with_restore(mut self, op_ms: u64, bytes_per_ms: u64) -> Self {
        self.restore_op_ms = op_ms;
        self.restore_bytes_per_ms = bytes_per_ms;
        self
    }

    /// Builder: finite byte budget (turns on sealed-generation eviction).
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.budget_bytes = bytes;
        self
    }
}

/// Per-kernel checkpointing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot period, in scheduling quanta; `0` disables checkpointing
    /// entirely (the seed behavior, and the paper's §5.2 setup).
    pub every_quanta: u32,
    /// Fault-injection knob for the harness: deliberately drop the last
    /// stateful operator's blob from every restore, so the campaign's
    /// `StatePreservation` oracle (which self-verifies restores) has a
    /// demonstrably detectable failure mode. Never enable outside tests.
    pub lossy_restore: bool,
    /// Sender-side upstream backup: buffer every delivery to a
    /// checkpointable PE, trim on checkpoint commit, and replay the gap
    /// into restored PEs — exactly-once recovery instead of losing the
    /// tuples in flight between the snapshot and the crash.
    pub upstream_backup: bool,
    /// Chain compaction bound: a slot's chain holds at most this many
    /// snapshots (base + deltas); the save that would exceed it lands as a
    /// fresh full base instead. `1` disables deltas entirely.
    pub full_every: u32,
    /// Simulated write/restore latency and byte budget of the store.
    pub storage: StorageModel,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_quanta: 0,
            lossy_restore: false,
            upstream_backup: false,
            full_every: 8,
            storage: StorageModel::default(),
        }
    }
}

impl CheckpointPolicy {
    /// Checkpointing every `quanta` scheduling quanta.
    pub fn every(quanta: u32) -> Self {
        CheckpointPolicy {
            every_quanta: quanta,
            ..Default::default()
        }
    }

    pub fn enabled(&self) -> bool {
        self.every_quanta > 0
    }

    /// Builder: drop the last stateful operator's blob on every restore
    /// (harness fault-injection knob; never enable outside tests).
    pub fn lossy(mut self, lossy: bool) -> Self {
        self.lossy_restore = lossy;
        self
    }

    /// Builder: sender-side upstream backup for exactly-once recovery.
    pub fn upstream_backup(mut self, on: bool) -> Self {
        self.upstream_backup = on;
        self
    }

    /// Builder: chain compaction bound (`1` disables deltas).
    pub fn full_every(mut self, n: u32) -> Self {
        self.full_every = n;
        self
    }

    /// Builder: storage cost model for the simulated checkpoint service.
    pub fn storage(mut self, storage: StorageModel) -> Self {
        self.storage = storage;
        self
    }

    /// The wall-clock period between snapshots under a given quantum.
    pub fn period(&self, quantum: SimDuration) -> SimDuration {
        SimDuration::from_millis(quantum.as_millis() * self.every_quanta as u64)
    }
}

/// An incremental snapshot: only the operators whose state blob changed
/// since the previous snapshot in the chain, plus the (always-changing)
/// input queues and metric table.
#[derive(Clone, Debug)]
pub struct PeDelta {
    pub taken_at: SimTime,
    /// Per operator slot: `Some` when dirty since the previous snapshot.
    pub ops: Vec<Option<OpCheckpoint>>,
    /// Input queues at snapshot time (same layout as [`PeCheckpoint`]: one
    /// batch-granular blob per port).
    pub queues: Vec<Vec<Bytes>>,
    pub metrics: Vec<(Arc<sps_engine::MetricKey>, i64)>,
}

impl PeDelta {
    /// Serialized bytes this delta contributes to the chain.
    fn state_bytes(&self) -> usize {
        let blobs: usize = self
            .ops
            .iter()
            .flatten()
            .filter_map(|o| o.blob.as_ref().map(|b| b.len()))
            .sum();
        let queues: usize = self
            .queues
            .iter()
            .flat_map(|op| op.iter())
            .map(Bytes::len)
            .sum();
        blobs + queues
    }

    /// Operators re-stored by this delta.
    pub fn dirty_ops(&self) -> usize {
        self.ops.iter().flatten().count()
    }
}

/// A compacted-away chain head retained as a read-only older generation
/// (finite budgets only): the fallback a restore reaches for when its newer
/// generations are unusable, and the first thing eviction reclaims.
struct SealedGen {
    ckpt: PeCheckpoint,
    sender_pos: Vec<(ChannelKey, u64)>,
}

impl SealedGen {
    fn state_bytes(&self) -> usize {
        self.ckpt.state_bytes()
    }
}

/// One PE slot's recovery chain plus its replay bookkeeping.
struct Slot {
    /// Full snapshot anchoring the chain.
    base: PeCheckpoint,
    /// Incremental snapshots applied on top of `base`, oldest first.
    deltas: Vec<PeDelta>,
    /// Cached materialization of `base` + `deltas` — what restores use.
    /// Not counted in `state_bytes` (it is a cache, not stored state).
    head: PeCheckpoint,
    /// Sender-side upstream-backup channel positions at snapshot time.
    sender_pos: Vec<(ChannelKey, u64)>,
    /// Older generations sealed off by compaction, oldest first (empty
    /// under an unbounded budget).
    sealed: Vec<SealedGen>,
}

impl Slot {
    /// Serialized bytes of the live chain (what a head restore reads).
    fn chain_bytes(&self) -> usize {
        self.base.state_bytes() + self.deltas.iter().map(PeDelta::state_bytes).sum::<usize>()
    }

    /// Everything the slot stores: live chain plus sealed generations.
    fn stored_bytes(&self) -> usize {
        self.chain_bytes()
            + self
                .sealed
                .iter()
                .map(SealedGen::state_bytes)
                .sum::<usize>()
    }
}

/// A save issued but not yet durable: commits at `commit_at`.
struct PendingWrite {
    job: JobId,
    adl_index: usize,
    ckpt: PeCheckpoint,
    sender_pos: Vec<(ChannelKey, u64)>,
    quanta_now: u64,
    commit_at: SimTime,
    /// Issue-order tiebreak so equal `commit_at` writes commit
    /// deterministically in issue order.
    seq: u64,
}

/// One durable commit reported by [`CheckpointStore::poll_commits`]. The
/// kernel trims upstream-backup buffers on *accepted* commits only — an
/// in-flight snapshot must never trim tuples it has not durably covered.
pub struct CommittedSave {
    pub job: JobId,
    pub adl_index: usize,
    pub taken_at: SimTime,
    /// `false` when the store rejected the commit as stale.
    pub accepted: bool,
}

/// One restorable generation of a slot, newest-first by `generations_back`
/// (0 = live chain head, 1 = newest sealed generation, …).
pub struct RestoreCandidate {
    pub ckpt: PeCheckpoint,
    pub sender_pos: Vec<(ChannelKey, u64)>,
    /// Bytes a restore reads back (the whole live chain for generation 0,
    /// the sealed snapshot itself otherwise) — drives restore latency.
    pub read_bytes: usize,
}

/// Newest checkpoint chain per `(job, ADL PE index)`, plus observability
/// counters.
pub struct CheckpointStore {
    slots: BTreeMap<(JobId, usize), Slot>,
    /// Compaction bound (from [`CheckpointPolicy::full_every`], min 1).
    full_every: usize,
    /// Simulated latency/budget model (default: instant and unbounded).
    storage: StorageModel,
    /// Saves issued but not yet committed, in issue order.
    pending: Vec<PendingWrite>,
    next_seq: u64,
    /// Global quantum index of each slot's newest snapshot *issue* (or
    /// restore), for the per-PE cadence skip. Store-level so an in-flight
    /// write already counts as recent capture.
    cadence: BTreeMap<(JobId, usize), u64>,
    /// Slots whose live chain eviction reclaimed, and how often — restarts
    /// report `FreshReason::Evicted` instead of `NoCheckpoint` for these.
    evicted: BTreeMap<(JobId, usize), u64>,
    /// Running total of serialized chain bytes, maintained on
    /// save/compact/evict/forget so `state_bytes()` is O(1) per SRM push.
    bytes: usize,
    saved: u64,
    restored: u64,
    fallbacks: u64,
    stale_rejected: u64,
    deltas_saved: u64,
    fulls_saved: u64,
    compactions: u64,
    issued: u64,
    aborted: u64,
    evictions: u64,
    peak_bytes: usize,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

impl CheckpointStore {
    pub fn new() -> Self {
        CheckpointStore::with_full_every(CheckpointPolicy::default().full_every)
    }

    /// A store compacting each chain after `full_every` snapshots, with the
    /// default (instant, unbounded) storage model.
    pub fn with_full_every(full_every: u32) -> Self {
        CheckpointStore::for_policy(&CheckpointPolicy::default().full_every(full_every))
    }

    /// A store configured from the full checkpoint policy.
    pub fn for_policy(policy: &CheckpointPolicy) -> Self {
        CheckpointStore {
            slots: BTreeMap::new(),
            full_every: (policy.full_every.max(1)) as usize,
            storage: policy.storage,
            pending: Vec::new(),
            next_seq: 0,
            cadence: BTreeMap::new(),
            evicted: BTreeMap::new(),
            bytes: 0,
            saved: 0,
            restored: 0,
            fallbacks: 0,
            stale_rejected: 0,
            deltas_saved: 0,
            fulls_saved: 0,
            compactions: 0,
            issued: 0,
            aborted: 0,
            evictions: 0,
            peak_bytes: 0,
        }
    }

    /// The storage model this store simulates.
    pub fn storage(&self) -> &StorageModel {
        &self.storage
    }

    /// Issues an asynchronous save: the snapshot becomes durable (and
    /// restorable) only when [`Self::poll_commits`] reaches
    /// `now + write_latency`. Records the slot's snapshot cadence at issue
    /// time so the kernel does not re-issue while a write is in flight.
    /// Returns the commit time.
    pub fn begin_save(
        &mut self,
        job: JobId,
        adl_index: usize,
        ckpt: PeCheckpoint,
        sender_pos: Vec<(ChannelKey, u64)>,
        quanta_now: u64,
        now: SimTime,
    ) -> SimTime {
        // Estimate the write size against the committed head: a compatible
        // non-full chain pays only the delta, anything else a full base.
        // Skipped entirely when throughput is infinite (bytes cost nothing).
        let write_bytes = if self.storage.write_bytes_per_ms == 0 {
            0
        } else {
            match self.slots.get(&(job, adl_index)) {
                Some(slot)
                    if slot.deltas.len() + 1 < self.full_every
                        && delta_compatible(&slot.head, &ckpt) =>
                {
                    diff(&slot.head, &ckpt).state_bytes()
                }
                _ => ckpt.state_bytes(),
            }
        };
        let commit_at = now + self.storage.write_latency(write_bytes);
        self.cadence.insert((job, adl_index), quanta_now);
        self.issued += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(PendingWrite {
            job,
            adl_index,
            ckpt,
            sender_pos,
            quanta_now,
            commit_at,
            seq,
        });
        commit_at
    }

    /// Commits every pending write due by `now` (in `(commit_at, issue)`
    /// order, so zero-latency saves commit exactly as the old synchronous
    /// store did), then enforces the byte budget. `protected` lists the PE
    /// slots whose live chain eviction must never reclaim — the kernel
    /// passes its `Up` checkpointable PEs.
    pub fn poll_commits(
        &mut self,
        now: SimTime,
        protected: &BTreeSet<(JobId, usize)>,
    ) -> Vec<CommittedSave> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let mut due = Vec::new();
        let mut rest = Vec::new();
        for w in self.pending.drain(..) {
            if w.commit_at <= now {
                due.push(w);
            } else {
                rest.push(w);
            }
        }
        self.pending = rest;
        due.sort_by_key(|w| (w.commit_at, w.seq));
        let mut out = Vec::with_capacity(due.len());
        for w in due {
            let taken_at = w.ckpt.taken_at;
            let accepted = self.save(w.job, w.adl_index, w.ckpt, w.sender_pos, w.quanta_now);
            out.push(CommittedSave {
                job: w.job,
                adl_index: w.adl_index,
                taken_at,
                accepted,
            });
        }
        self.enforce_budget(protected);
        out
    }

    /// Whether any issued save has yet to commit.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether a save for this PE slot is issued but not yet committed.
    pub fn write_in_flight(&self, job: JobId, adl_index: usize) -> bool {
        self.pending
            .iter()
            .any(|w| w.job == job && w.adl_index == adl_index)
    }

    /// Drops this slot's in-flight writes (a restart must not let a
    /// snapshot of the dead incarnation commit later and shadow the
    /// restored state's cadence). Returns how many were aborted.
    pub fn abort_inflight(&mut self, job: JobId, adl_index: usize) -> usize {
        let before = self.pending.len();
        self.pending
            .retain(|w| !(w.job == job && w.adl_index == adl_index));
        let aborted = before - self.pending.len();
        self.aborted += aborted as u64;
        aborted
    }

    /// Installs a snapshot for a PE slot, extending its incremental chain
    /// (or compacting to a fresh full base). Snapshots older than the
    /// stored head are rejected — a stale snapshot racing a restart must
    /// never roll a slot backwards. Returns whether the snapshot was
    /// accepted.
    ///
    /// This is the synchronous commit step; latency-modelled callers go
    /// through [`Self::begin_save`] / [`Self::poll_commits`] instead.
    pub fn save(
        &mut self,
        job: JobId,
        adl_index: usize,
        ckpt: PeCheckpoint,
        sender_pos: Vec<(ChannelKey, u64)>,
        quanta_now: u64,
    ) -> bool {
        match self.slots.get_mut(&(job, adl_index)) {
            Some(slot) => {
                if ckpt.taken_at < slot.head.taken_at {
                    self.stale_rejected += 1;
                    return false;
                }
                self.bytes -= slot.stored_bytes();
                // The chain holds at most `full_every` snapshots (base +
                // full_every - 1 deltas): once this save would stack one
                // more delta — or the shape changed — compact to a fresh
                // full base instead.
                let chain_full = slot.deltas.len() + 1 >= self.full_every;
                if chain_full || !delta_compatible(&slot.head, &ckpt) {
                    if self.storage.budget_bytes > 0 {
                        // Finite budget: seal the outgoing head as an older
                        // generation for restore fallback (it is also first
                        // in line for eviction).
                        slot.sealed.push(SealedGen {
                            ckpt: slot.head.clone(),
                            sender_pos: std::mem::take(&mut slot.sender_pos),
                        });
                    }
                    slot.base = ckpt.clone();
                    slot.deltas.clear();
                    self.fulls_saved += 1;
                    self.compactions += 1;
                } else {
                    slot.deltas.push(diff(&slot.head, &ckpt));
                    self.deltas_saved += 1;
                }
                slot.head = ckpt;
                slot.sender_pos = sender_pos;
                self.bytes += slot.stored_bytes();
            }
            None => {
                let slot = Slot {
                    head: ckpt.clone(),
                    base: ckpt,
                    deltas: Vec::new(),
                    sender_pos,
                    sealed: Vec::new(),
                };
                self.bytes += slot.stored_bytes();
                self.fulls_saved += 1;
                self.slots.insert((job, adl_index), slot);
            }
        }
        self.cadence.insert((job, adl_index), quanta_now);
        self.saved += 1;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        debug_assert_eq!(
            self.bytes,
            self.slots.values().map(Slot::stored_bytes).sum::<usize>(),
            "running byte counter out of sync with the chains"
        );
        debug_assert_eq!(
            self.materialize(job, adl_index).map(|c| c.digest()),
            self.latest(job, adl_index).map(|c| c.digest()),
            "delta chain does not materialize back to its head"
        );
        true
    }

    /// Evicts oldest-first until stored bytes fit the budget (no-op when
    /// unbounded). Per slot the oldest sealed generation goes before the
    /// live chain, and a live chain in `protected` is never evicted — an
    /// `Up` PE always keeps at least one restorable generation. Public so
    /// the eviction-safety property test can drive it directly.
    pub fn enforce_budget(&mut self, protected: &BTreeSet<(JobId, usize)>) {
        let budget = self.storage.budget_bytes;
        if budget == 0 {
            return;
        }
        enum Victim {
            Sealed,
            Chain,
        }
        while self.bytes > budget {
            let mut best: Option<(SimTime, (JobId, usize), Victim)> = None;
            for (key, slot) in &self.slots {
                let cand = if let Some(gen) = slot.sealed.first() {
                    (gen.ckpt.taken_at, *key, Victim::Sealed)
                } else if !protected.contains(key) {
                    (slot.base.taken_at, *key, Victim::Chain)
                } else {
                    continue;
                };
                if best.as_ref().is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
            match best {
                Some((_, key, Victim::Sealed)) => {
                    let slot = self.slots.get_mut(&key).expect("victim slot exists");
                    let gen = slot.sealed.remove(0);
                    self.bytes -= gen.state_bytes();
                    self.evictions += 1;
                }
                Some((_, key, Victim::Chain)) => {
                    let slot = self.slots.remove(&key).expect("victim slot exists");
                    self.bytes -= slot.stored_bytes();
                    *self.evicted.entry(key).or_insert(0) += 1;
                    self.evictions += 1;
                }
                // Only protected live chains remain: stop rather than
                // evict an Up PE's last restorable generation.
                None => break,
            }
        }
    }

    /// Newest committed snapshot for a PE slot, if any (the chain's cached
    /// head). In-flight writes are invisible here until they commit.
    pub fn latest(&self, job: JobId, adl_index: usize) -> Option<&PeCheckpoint> {
        self.slots.get(&(job, adl_index)).map(|s| &s.head)
    }

    /// Restorable generations of a slot: the live chain head plus any
    /// sealed older generations (0 when the slot holds nothing).
    pub fn restore_candidates(&self, job: JobId, adl_index: usize) -> usize {
        self.slots
            .get(&(job, adl_index))
            .map_or(0, |s| 1 + s.sealed.len())
    }

    /// The snapshot `generations_back` generations behind the head
    /// (0 = live head, 1 = newest sealed generation, …), with the
    /// sender-side positions recorded alongside it and the bytes a restore
    /// would read back.
    pub fn restore_candidate(
        &self,
        job: JobId,
        adl_index: usize,
        generations_back: usize,
    ) -> Option<RestoreCandidate> {
        let slot = self.slots.get(&(job, adl_index))?;
        if generations_back == 0 {
            return Some(RestoreCandidate {
                ckpt: slot.head.clone(),
                sender_pos: slot.sender_pos.clone(),
                read_bytes: slot.chain_bytes(),
            });
        }
        let idx = slot.sealed.len().checked_sub(generations_back)?;
        let gen = &slot.sealed[idx];
        Some(RestoreCandidate {
            ckpt: gen.ckpt.clone(),
            sender_pos: gen.sender_pos.clone(),
            read_bytes: gen.state_bytes(),
        })
    }

    /// Whether this slot's live chain was ever reclaimed by eviction — a
    /// restart that finds nothing distinguishes `Evicted` from plain
    /// `NoCheckpoint`.
    pub fn was_evicted(&self, job: JobId, adl_index: usize) -> bool {
        self.evicted.contains_key(&(job, adl_index))
    }

    /// Replays a slot's chain — base, then each delta in order — into a
    /// full snapshot. Restores use the cached head; this exists to verify
    /// the chain itself (and is what a cold-start recovery would run).
    pub fn materialize(&self, job: JobId, adl_index: usize) -> Option<PeCheckpoint> {
        let slot = self.slots.get(&(job, adl_index))?;
        let mut cur = slot.base.clone();
        for delta in &slot.deltas {
            cur.taken_at = delta.taken_at;
            for (op, dirty) in cur.ops.iter_mut().zip(&delta.ops) {
                if let Some(new_op) = dirty {
                    *op = new_op.clone();
                }
            }
            cur.queues = delta.queues.clone();
            cur.metrics = delta.metrics.clone();
        }
        Some(cur)
    }

    /// Number of deltas stacked on a slot's base snapshot.
    pub fn chain_deltas(&self, job: JobId, adl_index: usize) -> usize {
        self.slots
            .get(&(job, adl_index))
            .map_or(0, |s| s.deltas.len())
    }

    /// Sender-side channel positions recorded with a slot's newest snapshot.
    pub fn sender_pos(&self, job: JobId, adl_index: usize) -> &[(ChannelKey, u64)] {
        self.slots
            .get(&(job, adl_index))
            .map(|s| s.sender_pos.as_slice())
            .unwrap_or(&[])
    }

    /// Quanta elapsed since a slot's newest snapshot issue (or restore), if
    /// it has one. The kernel skips the periodic snapshot of a PE whose
    /// state was captured less than half a period ago.
    pub fn quanta_since_snapshot(
        &self,
        job: JobId,
        adl_index: usize,
        quanta_now: u64,
    ) -> Option<u64> {
        self.cadence
            .get(&(job, adl_index))
            .map(|last| quanta_now.saturating_sub(*last))
    }

    /// Marks a slot as freshly captured at `quanta_now` without saving
    /// (used on restore: the revived PE equals its snapshot, so an
    /// immediate re-snapshot would be pure overhead).
    pub fn mark_snapshot_quantum(&mut self, job: JobId, adl_index: usize, quanta_now: u64) {
        if let Some(last) = self.cadence.get_mut(&(job, adl_index)) {
            *last = quanta_now;
        }
    }

    /// Drops every snapshot (committed, sealed, and in-flight) of a
    /// cancelled job, plus its cadence and eviction bookkeeping.
    pub fn forget_job(&mut self, job: JobId) {
        let mut removed = 0usize;
        self.slots.retain(|(j, _), slot| {
            if *j == job {
                removed += slot.stored_bytes();
                false
            } else {
                true
            }
        });
        self.bytes -= removed;
        self.pending.retain(|w| w.job != job);
        self.cadence.retain(|(j, _), _| *j != job);
        self.evicted.retain(|(j, _), _| *j != job);
    }

    /// Number of PE slots currently holding a snapshot.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total snapshots ever accepted.
    pub fn saved(&self) -> u64 {
        self.saved
    }

    /// Restores that applied a checkpoint.
    pub fn restored(&self) -> u64 {
        self.restored
    }

    /// Restarts that fell back to fresh state (no/incompatible checkpoint).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Snapshots rejected for being older than the stored head.
    pub fn stale_rejected(&self) -> u64 {
        self.stale_rejected
    }

    /// Snapshots stored incrementally (dirty ops only).
    pub fn deltas_saved(&self) -> u64 {
        self.deltas_saved
    }

    /// Snapshots stored as full bases (first save or compaction).
    pub fn fulls_saved(&self) -> u64 {
        self.fulls_saved
    }

    /// Chain compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Saves issued through [`Self::begin_save`].
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// In-flight writes dropped by [`Self::abort_inflight`].
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Sealed generations and live chains reclaimed by the budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// High-water mark of `state_bytes()` across the store's lifetime.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_bytes
    }

    pub(crate) fn count_restore(&mut self) {
        self.restored += 1;
    }

    pub(crate) fn count_fallback(&mut self) {
        self.fallbacks += 1;
    }

    /// Total serialized state bytes currently held across all chains
    /// (observability). O(1): maintained as a running counter on
    /// save/compact/evict/forget.
    pub fn state_bytes(&self) -> usize {
        self.bytes
    }
}

/// Can `next` extend the chain ending at `head` as a delta? Any shape
/// change (which [`crate::kernel`] never produces for a live job, since the
/// ADL is immutable) forces a full snapshot instead.
fn delta_compatible(head: &PeCheckpoint, next: &PeCheckpoint) -> bool {
    head.format_version == next.format_version
        && head.pe_index == next.pe_index
        && head.ops.len() == next.ops.len()
        && head
            .ops
            .iter()
            .zip(&next.ops)
            .all(|(a, b)| a.name == b.name && a.kind == b.kind)
}

/// Builds the incremental snapshot taking `head` to `next`. An operator is
/// dirty when any part of its checkpoint changed — the [`StateBlob`] digest
/// comparison short-circuits the common clean case without a byte compare.
///
/// [`StateBlob`]: sps_engine::StateBlob
fn diff(head: &PeCheckpoint, next: &PeCheckpoint) -> PeDelta {
    PeDelta {
        taken_at: next.taken_at,
        ops: head
            .ops
            .iter()
            .zip(&next.ops)
            .map(|(old, new)| {
                let clean = match (&old.blob, &new.blob) {
                    (Some(a), Some(b)) => a.digest() == b.digest() && old == new,
                    (None, None) => old == new,
                    _ => false,
                };
                if clean {
                    None
                } else {
                    Some(new.clone())
                }
            })
            .collect(),
        queues: next.queues.clone(),
        metrics: next.metrics.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_engine::ckpt::CKPT_FORMAT_VERSION;
    use sps_engine::StateWriter;

    fn blob(v: i64) -> sps_engine::StateBlob {
        let mut w = StateWriter::new();
        w.put_i64(v);
        w.finish()
    }

    fn ckpt_with(at: u64, state: i64, queued: &[&'static [u8]]) -> PeCheckpoint {
        PeCheckpoint {
            format_version: CKPT_FORMAT_VERSION,
            pe_index: 0,
            taken_at: SimTime::from_secs(at),
            ops: vec![
                OpCheckpoint {
                    name: "agg".into(),
                    kind: "Aggregate".into(),
                    finals_seen: vec![false],
                    blob: Some(blob(state)),
                },
                OpCheckpoint {
                    name: "snk".into(),
                    kind: "Sink".into(),
                    finals_seen: vec![false],
                    blob: None,
                },
            ],
            queues: vec![vec![Bytes::from(queued.concat())], vec![Bytes::new()]],
            metrics: vec![],
        }
    }

    fn ckpt(at: u64) -> PeCheckpoint {
        ckpt_with(at, 7, &[])
    }

    fn save(s: &mut CheckpointStore, job: u64, adl: usize, c: PeCheckpoint) -> bool {
        let q = c.taken_at.as_millis() / 100;
        s.save(JobId(job), adl, c, vec![], q)
    }

    /// A store with a finite byte budget (instant writes).
    fn budgeted(full_every: u32, budget: usize) -> CheckpointStore {
        CheckpointStore::for_policy(
            &CheckpointPolicy::default()
                .full_every(full_every)
                .storage(StorageModel::default().with_budget(budget)),
        )
    }

    #[test]
    fn save_replaces_and_forget_clears() {
        let mut s = CheckpointStore::new();
        assert!(s.is_empty());
        save(&mut s, 1, 0, ckpt(1));
        save(&mut s, 1, 0, ckpt(2));
        save(&mut s, 1, 1, ckpt(2));
        save(&mut s, 2, 0, ckpt(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.saved(), 4);
        assert_eq!(
            s.latest(JobId(1), 0).unwrap().taken_at,
            SimTime::from_secs(2)
        );
        s.forget_job(JobId(1));
        assert_eq!(s.len(), 1);
        assert!(s.latest(JobId(1), 0).is_none());
        assert!(s.latest(JobId(2), 0).is_some());
        assert_eq!(s.state_bytes(), 8);
    }

    #[test]
    fn stale_snapshot_is_rejected() {
        let mut s = CheckpointStore::new();
        assert!(save(&mut s, 1, 0, ckpt_with(5, 50, &[])));
        // A snapshot of the pre-restart incarnation arriving late must not
        // roll the slot backwards.
        assert!(!save(&mut s, 1, 0, ckpt_with(3, 30, &[])));
        assert_eq!(s.stale_rejected(), 1);
        assert_eq!(s.saved(), 1);
        let head = s.latest(JobId(1), 0).unwrap();
        assert_eq!(head.taken_at, SimTime::from_secs(5));
        assert_eq!(head.ops[0].blob.as_ref().unwrap(), &blob(50));
        // Same-time saves (restore-time re-marks) still replace.
        assert!(save(&mut s, 1, 0, ckpt_with(5, 55, &[])));
    }

    #[test]
    fn delta_chain_stores_dirty_ops_and_compacts() {
        let mut s = CheckpointStore::with_full_every(3);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[b"aa"]));
        assert_eq!((s.fulls_saved(), s.deltas_saved()), (1, 0));
        // Unchanged operator state: the delta re-stores only the queues.
        save(&mut s, 1, 0, ckpt_with(2, 10, &[b"bb", b"cc"]));
        assert_eq!((s.fulls_saved(), s.deltas_saved()), (1, 1));
        assert_eq!(s.chain_deltas(JobId(1), 0), 1);
        assert_eq!(
            s.state_bytes(),
            (8 + 2) + 4,
            "base blob+queue, delta queues only"
        );
        // Dirty operator: its blob rides in the second delta.
        save(&mut s, 1, 0, ckpt_with(3, 30, &[]));
        assert_eq!((s.fulls_saved(), s.deltas_saved()), (1, 2));
        assert_eq!(s.state_bytes(), (8 + 2) + 4 + 8);
        // The chain now holds full_every=3 snapshots (base + 2 deltas): the
        // fourth save compacts instead of stacking a third delta.
        save(&mut s, 1, 0, ckpt_with(4, 40, &[]));
        assert_eq!(s.chain_deltas(JobId(1), 0), 0);
        assert_eq!(s.compactions(), 1);
        assert_eq!(s.fulls_saved(), 2);
        assert_eq!(s.state_bytes(), 8);
        assert_eq!(
            s.latest(JobId(1), 0).unwrap().ops[0].blob.as_ref().unwrap(),
            &blob(40)
        );
        // The cycle repeats: saves 5 and 6 stack deltas, save 7 compacts —
        // fulls land on every full_every-th save of the slot (1, 4, 7).
        save(&mut s, 1, 0, ckpt_with(5, 50, &[]));
        save(&mut s, 1, 0, ckpt_with(6, 60, &[]));
        assert_eq!((s.fulls_saved(), s.compactions()), (2, 1));
        save(&mut s, 1, 0, ckpt_with(7, 70, &[]));
        assert_eq!((s.fulls_saved(), s.compactions()), (3, 2));
        assert_eq!(s.chain_deltas(JobId(1), 0), 0);
    }

    #[test]
    fn full_every_one_disables_deltas() {
        let mut s = CheckpointStore::with_full_every(1);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[]));
        save(&mut s, 1, 0, ckpt_with(2, 20, &[]));
        save(&mut s, 1, 0, ckpt_with(3, 30, &[]));
        assert_eq!(s.deltas_saved(), 0);
        assert_eq!(s.fulls_saved(), 3);
        assert_eq!(s.chain_deltas(JobId(1), 0), 0);
        assert_eq!(
            s.latest(JobId(1), 0).unwrap().ops[0].blob.as_ref().unwrap(),
            &blob(30)
        );
    }

    #[test]
    fn materialize_replays_chain_to_head() {
        let mut s = CheckpointStore::with_full_every(10);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[b"aa"]));
        for at in 2..6 {
            save(&mut s, 1, 0, ckpt_with(at, at as i64 * 10, &[b"zz"]));
        }
        assert_eq!(s.chain_deltas(JobId(1), 0), 4);
        let materialized = s.materialize(JobId(1), 0).unwrap();
        let head = s.latest(JobId(1), 0).unwrap();
        assert_eq!(&materialized, head);
        assert_eq!(materialized.digest(), head.digest());
    }

    #[test]
    fn cadence_tracking() {
        let mut s = CheckpointStore::new();
        assert_eq!(s.quanta_since_snapshot(JobId(1), 0, 50), None);
        s.save(JobId(1), 0, ckpt(1), vec![], 10);
        assert_eq!(s.quanta_since_snapshot(JobId(1), 0, 14), Some(4));
        s.mark_snapshot_quantum(JobId(1), 0, 13);
        assert_eq!(s.quanta_since_snapshot(JobId(1), 0, 14), Some(1));
    }

    #[test]
    fn sender_pos_roundtrips() {
        let mut s = CheckpointStore::new();
        let key = ChannelKey::Intra {
            job: JobId(1),
            from: 0,
            to: 1,
            op: "flt".into(),
            port: 0,
        };
        s.save(JobId(1), 0, ckpt(1), vec![(key.clone(), 42)], 10);
        assert_eq!(s.sender_pos(JobId(1), 0), &[(key, 42)]);
        assert!(s.sender_pos(JobId(1), 1).is_empty());
    }

    #[test]
    fn policy_defaults_off() {
        let p = CheckpointPolicy::default();
        assert!(!p.enabled());
        assert!(!p.upstream_backup);
        assert_eq!(p.full_every, 8);
        assert_eq!(p.storage, StorageModel::default());
        let p = CheckpointPolicy::every(10);
        assert!(p.enabled());
        assert_eq!(
            p.period(SimDuration::from_millis(100)),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn storage_latency_math() {
        let m = StorageModel {
            write_op_ms: 5,
            write_bytes_per_ms: 4,
            restore_op_ms: 2,
            restore_bytes_per_ms: 0,
            ..Default::default()
        };
        // op cost + ceil(bytes / throughput)
        assert_eq!(m.write_latency(0), SimDuration::from_millis(5));
        assert_eq!(m.write_latency(9), SimDuration::from_millis(5 + 3));
        // infinite throughput: only the op cost
        assert_eq!(m.restore_latency(1 << 20), SimDuration::from_millis(2));
        // defaults are free
        assert_eq!(
            StorageModel::default().write_latency(1 << 20),
            SimDuration::from_millis(0)
        );
    }

    #[test]
    fn async_save_commits_at_write_latency() {
        let mut s = CheckpointStore::for_policy(
            &CheckpointPolicy::default().storage(StorageModel::default().with_write(250, 0)),
        );
        let none = BTreeSet::new();
        let t0 = SimTime::from_secs(1);
        let commit_at = s.begin_save(JobId(1), 0, ckpt(1), vec![], 10, t0);
        assert_eq!(commit_at, t0 + SimDuration::from_millis(250));
        assert!(s.write_in_flight(JobId(1), 0));
        // Cadence counts from issue, so the kernel won't re-issue mid-write.
        assert_eq!(s.quanta_since_snapshot(JobId(1), 0, 12), Some(2));
        // Not yet durable: invisible to restores, and polling early is a
        // no-op.
        assert!(s.latest(JobId(1), 0).is_none());
        assert!(s.poll_commits(t0, &none).is_empty());
        assert!(s.has_pending());
        let commits = s.poll_commits(commit_at, &none);
        assert_eq!(commits.len(), 1);
        assert!(commits[0].accepted);
        assert_eq!(commits[0].taken_at, SimTime::from_secs(1));
        assert!(!s.has_pending());
        assert!(s.latest(JobId(1), 0).is_some());
        assert_eq!((s.issued(), s.saved()), (1, 1));
    }

    #[test]
    fn zero_latency_saves_commit_in_issue_order() {
        let mut s = CheckpointStore::new();
        let none = BTreeSet::new();
        let t = SimTime::from_secs(2);
        s.begin_save(JobId(1), 0, ckpt_with(2, 20, &[]), vec![], 20, t);
        s.begin_save(JobId(1), 1, ckpt_with(2, 21, &[]), vec![], 20, t);
        let commits = s.poll_commits(t, &none);
        assert_eq!(commits.len(), 2);
        assert_eq!((commits[0].job, commits[0].adl_index), (JobId(1), 0));
        assert_eq!((commits[1].job, commits[1].adl_index), (JobId(1), 1));
        assert!(commits.iter().all(|c| c.accepted));
    }

    #[test]
    fn abort_inflight_drops_pending_writes() {
        let mut s = CheckpointStore::for_policy(
            &CheckpointPolicy::default().storage(StorageModel::default().with_write(100, 0)),
        );
        let t = SimTime::from_secs(1);
        s.begin_save(JobId(1), 0, ckpt(1), vec![], 10, t);
        s.begin_save(JobId(1), 1, ckpt(1), vec![], 10, t);
        assert_eq!(s.abort_inflight(JobId(1), 0), 1);
        assert!(!s.write_in_flight(JobId(1), 0));
        assert!(s.write_in_flight(JobId(1), 1));
        assert_eq!(s.aborted(), 1);
        let commits = s.poll_commits(SimTime::from_secs(5), &BTreeSet::new());
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].adl_index, 1);
    }

    #[test]
    fn eviction_reclaims_oldest_unprotected_chain() {
        // Two slots, 8 bytes each; budget fits only one.
        let mut s = budgeted(8, 12);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[]));
        save(&mut s, 1, 1, ckpt_with(2, 20, &[]));
        assert_eq!(s.state_bytes(), 16);
        s.enforce_budget(&BTreeSet::new());
        // Oldest chain (slot 0, taken at t=1) goes first.
        assert!(s.latest(JobId(1), 0).is_none());
        assert!(s.latest(JobId(1), 1).is_some());
        assert!(s.was_evicted(JobId(1), 0));
        assert!(!s.was_evicted(JobId(1), 1));
        assert_eq!(s.evictions(), 1);
        assert!(s.state_bytes() <= 12);
        assert_eq!(s.peak_state_bytes(), 16);
    }

    #[test]
    fn eviction_never_claims_protected_live_chain() {
        let mut s = budgeted(8, 4);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[]));
        save(&mut s, 1, 1, ckpt_with(2, 20, &[]));
        let protected: BTreeSet<_> = [(JobId(1), 0), (JobId(1), 1)].into_iter().collect();
        s.enforce_budget(&protected);
        // Both slots protected: over budget, but neither chain is evicted.
        assert!(s.latest(JobId(1), 0).is_some());
        assert!(s.latest(JobId(1), 1).is_some());
        assert_eq!(s.evictions(), 0);
        assert!(s.state_bytes() > 4);
    }

    #[test]
    fn compaction_seals_old_head_for_fallback_restores() {
        // full_every=2 with a finite budget: saves 3 and 5 compact,
        // sealing the outgoing heads (t2, t4) as older generations.
        let mut s = budgeted(2, 1 << 20);
        for at in 1..=5 {
            save(&mut s, 1, 0, ckpt_with(at, at as i64 * 10, &[]));
        }
        assert_eq!(s.compactions(), 2);
        assert_eq!(s.restore_candidates(JobId(1), 0), 3);
        let head = s.restore_candidate(JobId(1), 0, 0).unwrap();
        assert_eq!(head.ckpt.taken_at, SimTime::from_secs(5));
        let prev = s.restore_candidate(JobId(1), 0, 1).unwrap();
        assert_eq!(prev.ckpt.taken_at, SimTime::from_secs(4));
        let oldest = s.restore_candidate(JobId(1), 0, 2).unwrap();
        assert_eq!(oldest.ckpt.taken_at, SimTime::from_secs(2));
        assert!(s.restore_candidate(JobId(1), 0, 3).is_none());
        // Sealed generations count toward the stored bytes.
        assert_eq!(s.state_bytes(), 3 * 8);
        // Eviction under pressure reclaims sealed generations oldest-first
        // before touching any live chain.
        let protected: BTreeSet<_> = [(JobId(1), 0)].into_iter().collect();
        s.storage.budget_bytes = 16;
        s.enforce_budget(&protected);
        assert_eq!(s.restore_candidates(JobId(1), 0), 2);
        assert_eq!(
            s.restore_candidate(JobId(1), 0, 1).unwrap().ckpt.taken_at,
            SimTime::from_secs(4)
        );
        assert!(!s.was_evicted(JobId(1), 0), "live chain survived");
        assert_eq!(s.state_bytes(), 16);
    }

    #[test]
    fn unbounded_budget_never_seals() {
        let mut s = CheckpointStore::with_full_every(2);
        for at in 1..6 {
            save(&mut s, 1, 0, ckpt_with(at, at as i64, &[]));
        }
        assert!(s.compactions() > 0);
        // No sealed generations pile up: the old behavior, byte-for-byte.
        assert_eq!(s.restore_candidates(JobId(1), 0), 1);
        assert_eq!(s.state_bytes(), 8);
    }

    #[test]
    fn forget_job_clears_pending_and_tombstones() {
        let mut s = budgeted(8, 8);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[]));
        save(&mut s, 1, 1, ckpt_with(2, 20, &[]));
        s.enforce_budget(&BTreeSet::new());
        assert!(s.was_evicted(JobId(1), 0));
        s.begin_save(
            JobId(1),
            1,
            ckpt_with(3, 30, &[]),
            vec![],
            30,
            SimTime::from_secs(3),
        );
        s.forget_job(JobId(1));
        assert!(!s.has_pending());
        assert!(!s.was_evicted(JobId(1), 0));
        assert_eq!(s.quanta_since_snapshot(JobId(1), 1, 40), None);
        assert_eq!(s.state_bytes(), 0);
    }
}
