//! The runtime checkpoint store.
//!
//! The paper's recovery story distinguishes restarting a PE with *fresh*
//! state (§5.2 — the Trend Calculator deliberately runs without
//! checkpointing and pays a window-refill gap) from recovering it with its
//! operator state intact. This module supplies the latter: the kernel
//! periodically snapshots every checkpointable, `Up` PE into a
//! [`PeCheckpoint`] keyed by `(job, ADL PE index)` — the identity that
//! survives restarts, unlike [`PeId`]s which are minted fresh each time —
//! and [`crate::kernel::Kernel::restart_pe`] restores the newest snapshot
//! into the replacement process, falling back to fresh state when none
//! exists or the shape changed.
//!
//! Since checkpoint format v2 snapshots also capture the PE's input queues,
//! and the store keeps each slot as an *incremental chain*: a full base
//! snapshot plus per-interval deltas that re-store only the operators whose
//! state blob actually changed (dirty tracking via [`StateBlob`] digests).
//! Every [`CheckpointPolicy::full_every`] snapshots the chain is compacted
//! back into a fresh full base, bounding recovery-chain length. Alongside
//! each snapshot the store records the sender-side upstream-backup channel
//! positions, so a restore can roll the sender's duplicate-suppression
//! counters back in lockstep with its state.
//!
//! The store models a highly available external service (the real system
//! would keep this in a distributed file system): host failures do not lose
//! checkpoints, only job cancellation discards them.
//!
//! [`StateBlob`]: sps_engine::StateBlob
//! [`PeId`]: crate::ids::PeId

use crate::broker::ChannelKey;
use crate::ids::JobId;
use bytes::Bytes;
use sps_engine::{OpCheckpoint, PeCheckpoint};
use sps_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-kernel checkpointing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot period, in scheduling quanta; `0` disables checkpointing
    /// entirely (the seed behavior, and the paper's §5.2 setup).
    pub every_quanta: u32,
    /// Fault-injection knob for the harness: deliberately drop the last
    /// stateful operator's blob from every restore, so the campaign's
    /// `StatePreservation` oracle (which self-verifies restores) has a
    /// demonstrably detectable failure mode. Never enable outside tests.
    pub lossy_restore: bool,
    /// Sender-side upstream backup: buffer every delivery to a
    /// checkpointable PE, trim on checkpoint commit, and replay the gap
    /// into restored PEs — exactly-once recovery instead of losing the
    /// tuples in flight between the snapshot and the crash.
    pub upstream_backup: bool,
    /// Chain compaction bound: force a full snapshot once a slot's chain
    /// would exceed this many snapshots (base + deltas). `1` disables
    /// deltas entirely.
    pub full_every: u32,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_quanta: 0,
            lossy_restore: false,
            upstream_backup: false,
            full_every: 8,
        }
    }
}

impl CheckpointPolicy {
    /// Checkpointing every `quanta` scheduling quanta.
    pub fn every(quanta: u32) -> Self {
        CheckpointPolicy {
            every_quanta: quanta,
            ..Default::default()
        }
    }

    pub fn enabled(&self) -> bool {
        self.every_quanta > 0
    }

    /// The wall-clock period between snapshots under a given quantum.
    pub fn period(&self, quantum: SimDuration) -> SimDuration {
        SimDuration::from_millis(quantum.as_millis() * self.every_quanta as u64)
    }
}

/// An incremental snapshot: only the operators whose state blob changed
/// since the previous snapshot in the chain, plus the (always-changing)
/// input queues and metric table.
#[derive(Clone, Debug)]
pub struct PeDelta {
    pub taken_at: SimTime,
    /// Per operator slot: `Some` when dirty since the previous snapshot.
    pub ops: Vec<Option<OpCheckpoint>>,
    /// Input queues at snapshot time (same layout as [`PeCheckpoint`]).
    pub queues: Vec<Vec<Vec<Bytes>>>,
    pub metrics: Vec<(Arc<sps_engine::MetricKey>, i64)>,
}

impl PeDelta {
    /// Serialized bytes this delta contributes to the chain.
    fn state_bytes(&self) -> usize {
        let blobs: usize = self
            .ops
            .iter()
            .flatten()
            .filter_map(|o| o.blob.as_ref().map(|b| b.len()))
            .sum();
        let queues: usize = self
            .queues
            .iter()
            .flat_map(|op| op.iter())
            .flat_map(|port| port.iter())
            .map(Bytes::len)
            .sum();
        blobs + queues
    }

    /// Operators re-stored by this delta.
    pub fn dirty_ops(&self) -> usize {
        self.ops.iter().flatten().count()
    }
}

/// One PE slot's recovery chain plus its replay bookkeeping.
struct Slot {
    /// Full snapshot anchoring the chain.
    base: PeCheckpoint,
    /// Incremental snapshots applied on top of `base`, oldest first.
    deltas: Vec<PeDelta>,
    /// Cached materialization of `base` + `deltas` — what restores use.
    /// Not counted in `state_bytes` (it is a cache, not stored state).
    head: PeCheckpoint,
    /// Sender-side upstream-backup channel positions at snapshot time.
    sender_pos: Vec<(ChannelKey, u64)>,
    /// Global quantum index of the newest snapshot (or restore), for the
    /// per-PE cadence skip.
    last_snap_quantum: u64,
}

impl Slot {
    fn chain_bytes(&self) -> usize {
        self.base.state_bytes() + self.deltas.iter().map(PeDelta::state_bytes).sum::<usize>()
    }
}

/// Newest checkpoint chain per `(job, ADL PE index)`, plus observability
/// counters.
pub struct CheckpointStore {
    slots: BTreeMap<(JobId, usize), Slot>,
    /// Compaction bound (from [`CheckpointPolicy::full_every`], min 1).
    full_every: usize,
    /// Running total of serialized chain bytes, maintained on
    /// save/compact/forget so `state_bytes()` is O(1) per SRM push.
    bytes: usize,
    saved: u64,
    restored: u64,
    fallbacks: u64,
    stale_rejected: u64,
    deltas_saved: u64,
    fulls_saved: u64,
    compactions: u64,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

impl CheckpointStore {
    pub fn new() -> Self {
        CheckpointStore::with_full_every(CheckpointPolicy::default().full_every)
    }

    /// A store compacting each chain after `full_every` snapshots.
    pub fn with_full_every(full_every: u32) -> Self {
        CheckpointStore {
            slots: BTreeMap::new(),
            full_every: (full_every.max(1)) as usize,
            bytes: 0,
            saved: 0,
            restored: 0,
            fallbacks: 0,
            stale_rejected: 0,
            deltas_saved: 0,
            fulls_saved: 0,
            compactions: 0,
        }
    }

    /// Installs a snapshot for a PE slot, extending its incremental chain
    /// (or compacting to a fresh full base). Snapshots older than the
    /// stored head are rejected — a stale snapshot racing a restart must
    /// never roll a slot backwards. Returns whether the snapshot was
    /// accepted.
    pub fn save(
        &mut self,
        job: JobId,
        adl_index: usize,
        ckpt: PeCheckpoint,
        sender_pos: Vec<(ChannelKey, u64)>,
        quanta_now: u64,
    ) -> bool {
        match self.slots.get_mut(&(job, adl_index)) {
            Some(slot) => {
                if ckpt.taken_at < slot.head.taken_at {
                    self.stale_rejected += 1;
                    return false;
                }
                self.bytes -= slot.chain_bytes();
                if slot.deltas.len() + 2 > self.full_every || !delta_compatible(&slot.head, &ckpt) {
                    // Chain at its bound (or shape changed): compact to a
                    // fresh full base.
                    slot.base = ckpt.clone();
                    slot.deltas.clear();
                    self.fulls_saved += 1;
                    self.compactions += 1;
                } else {
                    slot.deltas.push(diff(&slot.head, &ckpt));
                    self.deltas_saved += 1;
                }
                slot.head = ckpt;
                slot.sender_pos = sender_pos;
                slot.last_snap_quantum = quanta_now;
                self.bytes += slot.chain_bytes();
            }
            None => {
                let slot = Slot {
                    head: ckpt.clone(),
                    base: ckpt,
                    deltas: Vec::new(),
                    sender_pos,
                    last_snap_quantum: quanta_now,
                };
                self.bytes += slot.chain_bytes();
                self.fulls_saved += 1;
                self.slots.insert((job, adl_index), slot);
            }
        }
        self.saved += 1;
        debug_assert_eq!(
            self.bytes,
            self.slots.values().map(Slot::chain_bytes).sum::<usize>(),
            "running byte counter out of sync with the chains"
        );
        debug_assert_eq!(
            self.materialize(job, adl_index).map(|c| c.digest()),
            self.latest(job, adl_index).map(|c| c.digest()),
            "delta chain does not materialize back to its head"
        );
        true
    }

    /// Newest snapshot for a PE slot, if any (the chain's cached head).
    pub fn latest(&self, job: JobId, adl_index: usize) -> Option<&PeCheckpoint> {
        self.slots.get(&(job, adl_index)).map(|s| &s.head)
    }

    /// Replays a slot's chain — base, then each delta in order — into a
    /// full snapshot. Restores use the cached head; this exists to verify
    /// the chain itself (and is what a cold-start recovery would run).
    pub fn materialize(&self, job: JobId, adl_index: usize) -> Option<PeCheckpoint> {
        let slot = self.slots.get(&(job, adl_index))?;
        let mut cur = slot.base.clone();
        for delta in &slot.deltas {
            cur.taken_at = delta.taken_at;
            for (op, dirty) in cur.ops.iter_mut().zip(&delta.ops) {
                if let Some(new_op) = dirty {
                    *op = new_op.clone();
                }
            }
            cur.queues = delta.queues.clone();
            cur.metrics = delta.metrics.clone();
        }
        Some(cur)
    }

    /// Number of deltas stacked on a slot's base snapshot.
    pub fn chain_deltas(&self, job: JobId, adl_index: usize) -> usize {
        self.slots
            .get(&(job, adl_index))
            .map_or(0, |s| s.deltas.len())
    }

    /// Sender-side channel positions recorded with a slot's newest snapshot.
    pub fn sender_pos(&self, job: JobId, adl_index: usize) -> &[(ChannelKey, u64)] {
        self.slots
            .get(&(job, adl_index))
            .map(|s| s.sender_pos.as_slice())
            .unwrap_or(&[])
    }

    /// Quanta elapsed since a slot's newest snapshot (or restore), if it
    /// has one. The kernel skips the periodic snapshot of a PE whose state
    /// was captured less than half a period ago.
    pub fn quanta_since_snapshot(
        &self,
        job: JobId,
        adl_index: usize,
        quanta_now: u64,
    ) -> Option<u64> {
        self.slots
            .get(&(job, adl_index))
            .map(|s| quanta_now.saturating_sub(s.last_snap_quantum))
    }

    /// Marks a slot as freshly captured at `quanta_now` without saving
    /// (used on restore: the revived PE equals its snapshot, so an
    /// immediate re-snapshot would be pure overhead).
    pub fn mark_snapshot_quantum(&mut self, job: JobId, adl_index: usize, quanta_now: u64) {
        if let Some(slot) = self.slots.get_mut(&(job, adl_index)) {
            slot.last_snap_quantum = quanta_now;
        }
    }

    /// Drops every snapshot of a cancelled job.
    pub fn forget_job(&mut self, job: JobId) {
        let mut removed = 0usize;
        self.slots.retain(|(j, _), slot| {
            if *j == job {
                removed += slot.chain_bytes();
                false
            } else {
                true
            }
        });
        self.bytes -= removed;
    }

    /// Number of PE slots currently holding a snapshot.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total snapshots ever accepted.
    pub fn saved(&self) -> u64 {
        self.saved
    }

    /// Restores that applied a checkpoint.
    pub fn restored(&self) -> u64 {
        self.restored
    }

    /// Restarts that fell back to fresh state (no/incompatible checkpoint).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Snapshots rejected for being older than the stored head.
    pub fn stale_rejected(&self) -> u64 {
        self.stale_rejected
    }

    /// Snapshots stored incrementally (dirty ops only).
    pub fn deltas_saved(&self) -> u64 {
        self.deltas_saved
    }

    /// Snapshots stored as full bases (first save or compaction).
    pub fn fulls_saved(&self) -> u64 {
        self.fulls_saved
    }

    /// Chain compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    pub(crate) fn count_restore(&mut self) {
        self.restored += 1;
    }

    pub(crate) fn count_fallback(&mut self) {
        self.fallbacks += 1;
    }

    /// Total serialized state bytes currently held across all chains
    /// (observability). O(1): maintained as a running counter on
    /// save/compact/forget.
    pub fn state_bytes(&self) -> usize {
        self.bytes
    }
}

/// Can `next` extend the chain ending at `head` as a delta? Any shape
/// change (which [`crate::kernel`] never produces for a live job, since the
/// ADL is immutable) forces a full snapshot instead.
fn delta_compatible(head: &PeCheckpoint, next: &PeCheckpoint) -> bool {
    head.format_version == next.format_version
        && head.pe_index == next.pe_index
        && head.ops.len() == next.ops.len()
        && head
            .ops
            .iter()
            .zip(&next.ops)
            .all(|(a, b)| a.name == b.name && a.kind == b.kind)
}

/// Builds the incremental snapshot taking `head` to `next`. An operator is
/// dirty when any part of its checkpoint changed — the [`StateBlob`] digest
/// comparison short-circuits the common clean case without a byte compare.
///
/// [`StateBlob`]: sps_engine::StateBlob
fn diff(head: &PeCheckpoint, next: &PeCheckpoint) -> PeDelta {
    PeDelta {
        taken_at: next.taken_at,
        ops: head
            .ops
            .iter()
            .zip(&next.ops)
            .map(|(old, new)| {
                let clean = match (&old.blob, &new.blob) {
                    (Some(a), Some(b)) => a.digest() == b.digest() && old == new,
                    (None, None) => old == new,
                    _ => false,
                };
                if clean {
                    None
                } else {
                    Some(new.clone())
                }
            })
            .collect(),
        queues: next.queues.clone(),
        metrics: next.metrics.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_engine::ckpt::CKPT_FORMAT_VERSION;
    use sps_engine::StateWriter;

    fn blob(v: i64) -> sps_engine::StateBlob {
        let mut w = StateWriter::new();
        w.put_i64(v);
        w.finish()
    }

    fn ckpt_with(at: u64, state: i64, queued: &[&'static [u8]]) -> PeCheckpoint {
        PeCheckpoint {
            format_version: CKPT_FORMAT_VERSION,
            pe_index: 0,
            taken_at: SimTime::from_secs(at),
            ops: vec![
                OpCheckpoint {
                    name: "agg".into(),
                    kind: "Aggregate".into(),
                    finals_seen: vec![false],
                    blob: Some(blob(state)),
                },
                OpCheckpoint {
                    name: "snk".into(),
                    kind: "Sink".into(),
                    finals_seen: vec![false],
                    blob: None,
                },
            ],
            queues: vec![
                vec![queued.iter().map(|b| Bytes::from_static(b)).collect()],
                vec![vec![]],
            ],
            metrics: vec![],
        }
    }

    fn ckpt(at: u64) -> PeCheckpoint {
        ckpt_with(at, 7, &[])
    }

    fn save(s: &mut CheckpointStore, job: u64, adl: usize, c: PeCheckpoint) -> bool {
        let q = c.taken_at.as_millis() / 100;
        s.save(JobId(job), adl, c, vec![], q)
    }

    #[test]
    fn save_replaces_and_forget_clears() {
        let mut s = CheckpointStore::new();
        assert!(s.is_empty());
        save(&mut s, 1, 0, ckpt(1));
        save(&mut s, 1, 0, ckpt(2));
        save(&mut s, 1, 1, ckpt(2));
        save(&mut s, 2, 0, ckpt(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.saved(), 4);
        assert_eq!(
            s.latest(JobId(1), 0).unwrap().taken_at,
            SimTime::from_secs(2)
        );
        s.forget_job(JobId(1));
        assert_eq!(s.len(), 1);
        assert!(s.latest(JobId(1), 0).is_none());
        assert!(s.latest(JobId(2), 0).is_some());
        assert_eq!(s.state_bytes(), 8);
    }

    #[test]
    fn stale_snapshot_is_rejected() {
        let mut s = CheckpointStore::new();
        assert!(save(&mut s, 1, 0, ckpt_with(5, 50, &[])));
        // A snapshot of the pre-restart incarnation arriving late must not
        // roll the slot backwards.
        assert!(!save(&mut s, 1, 0, ckpt_with(3, 30, &[])));
        assert_eq!(s.stale_rejected(), 1);
        assert_eq!(s.saved(), 1);
        let head = s.latest(JobId(1), 0).unwrap();
        assert_eq!(head.taken_at, SimTime::from_secs(5));
        assert_eq!(head.ops[0].blob.as_ref().unwrap(), &blob(50));
        // Same-time saves (restore-time re-marks) still replace.
        assert!(save(&mut s, 1, 0, ckpt_with(5, 55, &[])));
    }

    #[test]
    fn delta_chain_stores_dirty_ops_and_compacts() {
        let mut s = CheckpointStore::with_full_every(3);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[b"aa"]));
        assert_eq!((s.fulls_saved(), s.deltas_saved()), (1, 0));
        // Unchanged operator state: the delta re-stores only the queues.
        save(&mut s, 1, 0, ckpt_with(2, 10, &[b"bb", b"cc"]));
        assert_eq!((s.fulls_saved(), s.deltas_saved()), (1, 1));
        assert_eq!(s.chain_deltas(JobId(1), 0), 1);
        assert_eq!(
            s.state_bytes(),
            (8 + 2) + 4,
            "base blob+queue, delta queues only"
        );
        // Dirty operator: its blob rides in the second delta.
        save(&mut s, 1, 0, ckpt_with(3, 30, &[]));
        assert_eq!((s.fulls_saved(), s.deltas_saved()), (1, 2));
        assert_eq!(s.state_bytes(), (8 + 2) + 4 + 8);
        // Fourth save would stack a third delta past full_every=3: compact.
        save(&mut s, 1, 0, ckpt_with(4, 40, &[]));
        assert_eq!(s.chain_deltas(JobId(1), 0), 0);
        assert_eq!(s.compactions(), 1);
        assert_eq!(s.fulls_saved(), 2);
        assert_eq!(s.state_bytes(), 8);
        assert_eq!(
            s.latest(JobId(1), 0).unwrap().ops[0].blob.as_ref().unwrap(),
            &blob(40)
        );
    }

    #[test]
    fn materialize_replays_chain_to_head() {
        let mut s = CheckpointStore::with_full_every(10);
        save(&mut s, 1, 0, ckpt_with(1, 10, &[b"aa"]));
        for at in 2..6 {
            save(&mut s, 1, 0, ckpt_with(at, at as i64 * 10, &[b"zz"]));
        }
        assert_eq!(s.chain_deltas(JobId(1), 0), 4);
        let materialized = s.materialize(JobId(1), 0).unwrap();
        let head = s.latest(JobId(1), 0).unwrap();
        assert_eq!(&materialized, head);
        assert_eq!(materialized.digest(), head.digest());
    }

    #[test]
    fn cadence_tracking() {
        let mut s = CheckpointStore::new();
        assert_eq!(s.quanta_since_snapshot(JobId(1), 0, 50), None);
        s.save(JobId(1), 0, ckpt(1), vec![], 10);
        assert_eq!(s.quanta_since_snapshot(JobId(1), 0, 14), Some(4));
        s.mark_snapshot_quantum(JobId(1), 0, 13);
        assert_eq!(s.quanta_since_snapshot(JobId(1), 0, 14), Some(1));
    }

    #[test]
    fn sender_pos_roundtrips() {
        let mut s = CheckpointStore::new();
        let key = ChannelKey::Intra {
            job: JobId(1),
            from: 0,
            to: 1,
            op: "flt".into(),
            port: 0,
        };
        s.save(JobId(1), 0, ckpt(1), vec![(key.clone(), 42)], 10);
        assert_eq!(s.sender_pos(JobId(1), 0), &[(key, 42)]);
        assert!(s.sender_pos(JobId(1), 1).is_empty());
    }

    #[test]
    fn policy_defaults_off() {
        let p = CheckpointPolicy::default();
        assert!(!p.enabled());
        assert!(!p.upstream_backup);
        assert_eq!(p.full_every, 8);
        let p = CheckpointPolicy::every(10);
        assert!(p.enabled());
        assert_eq!(
            p.period(SimDuration::from_millis(100)),
            SimDuration::from_secs(1)
        );
    }
}
