//! Simulated System S runtime infrastructure (§2.2).
//!
//! Reproduces the three middleware components the orchestrator interacts
//! with, on top of a deterministic simulated cluster:
//!
//! - **SAM** (Streams Application Manager): job submission/cancellation, PE
//!   spawning per placement constraints, PE stop/restart, orchestrator
//!   registration and failure-notification push ([`sam`]),
//! - **SRM** (Streams Resource Manager): host/component liveness and the
//!   system-wide metric collection point ([`srm`]),
//! - **HC** (Host Controller): a per-host daemon that runs PE processes and
//!   pushes their metrics to SRM every 3 seconds ([`cluster`]),
//!
//! plus the dynamic stream **import/export broker** (§2.1), a fault
//! injector, and the [`world::World`] driver that advances everything on a
//! fixed scheduling quantum. The ORCA service (in the `orca` crate) plugs in
//! as a [`world::Controller`].

pub mod broker;
pub mod ckpt;
pub mod cluster;
pub mod error;
pub mod ids;
pub mod kernel;
pub mod metastore;
pub mod sam;
pub mod srm;
pub mod world;

pub use broker::{BackupEntry, BackupItem, Broker, ChannelKey, UbStats, UpstreamBackup};
pub use ckpt::{
    CheckpointPolicy, CheckpointStore, CommittedSave, PeDelta, RestoreCandidate, StorageModel,
};
pub use cluster::{Cluster, Host, PeProcess, PeStatus};
pub use error::RuntimeError;
pub use ids::{JobId, OrcaId, PeId};
pub use kernel::{
    ControlStats, CrashRecord, FreshReason, Kernel, KillTarget, RestartRecord, RestoreOutcome,
    RuntimeConfig,
};
pub use metastore::{
    build_metastore, MemoryMetastore, MetaOp, MetaRecovery, MetaStats, MetaTables, Metastore,
    MetastoreKind, ReplicatedMetastore,
};
pub use sam::{CrashReason, JobInfo, JobStatus, OrcaNotification, Sam};
pub use srm::{MetricSnapshot, Srm};
pub use world::{Controller, World};
