//! The world driver: advances the kernel and attached controllers.
//!
//! A [`Controller`] is a component driven once per quantum with mutable
//! access to the kernel — the ORCA service is one (it pulls SAM
//! notifications, polls SRM on its own period, and issues actuations), and
//! tests register ad-hoc controllers for scripted scenarios.

use crate::kernel::Kernel;
use sps_sim::{SimDuration, SimTime};
use std::any::Any;

/// A per-quantum participant with kernel access.
pub trait Controller: Any {
    /// Called after every kernel quantum.
    fn on_quantum(&mut self, kernel: &mut Kernel);

    /// Downcast support (controllers are inspected by tests and harnesses).
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The top-level simulation world: one kernel plus its controllers.
pub struct World {
    pub kernel: Kernel,
    controllers: Vec<Box<dyn Controller>>,
}

impl World {
    pub fn new(kernel: Kernel) -> Self {
        World {
            kernel,
            controllers: Vec::new(),
        }
    }

    /// Attaches a controller; returns its index for later inspection.
    pub fn add_controller(&mut self, controller: Box<dyn Controller>) -> usize {
        self.controllers.push(controller);
        self.controllers.len() - 1
    }

    /// Immutable access to a controller by index and concrete type.
    pub fn controller<T: 'static>(&self, index: usize) -> Option<&T> {
        self.controllers.get(index)?.as_any().downcast_ref::<T>()
    }

    /// Mutable access to a controller by index and concrete type.
    pub fn controller_mut<T: 'static>(&mut self, index: usize) -> Option<&mut T> {
        self.controllers
            .get_mut(index)?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// One scheduling quantum: kernel first, then each controller in
    /// registration order.
    pub fn step(&mut self) {
        self.kernel.quantum();
        for c in &mut self.controllers {
            c.on_quantum(&mut self.kernel);
        }
    }

    /// Runs until the simulation clock reaches `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.kernel.now() < t {
            self.step();
        }
    }

    /// Runs for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.kernel.now() + d;
        self.run_until(target);
    }

    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::kernel::RuntimeConfig;
    use sps_engine::OperatorRegistry;

    fn world() -> World {
        World::new(Kernel::new(
            Cluster::with_hosts(1),
            OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        ))
    }

    struct Counter {
        ticks: usize,
        saw_time_advance: bool,
        last: SimTime,
    }

    impl Controller for Counter {
        fn on_quantum(&mut self, kernel: &mut Kernel) {
            self.ticks += 1;
            if kernel.now() > self.last {
                self.saw_time_advance = true;
            }
            self.last = kernel.now();
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn controllers_run_every_quantum() {
        let mut w = world();
        let idx = w.add_controller(Box::new(Counter {
            ticks: 0,
            saw_time_advance: false,
            last: SimTime::ZERO,
        }));
        w.run_for(SimDuration::from_secs(1));
        let c: &Counter = w.controller(idx).unwrap();
        assert_eq!(c.ticks, 10); // 100 ms quantum
        assert!(c.saw_time_advance);
        assert_eq!(w.now(), SimTime::from_secs(1));
    }

    #[test]
    fn run_until_is_exact_with_quantum_boundaries() {
        let mut w = world();
        w.run_until(SimTime::from_millis(500));
        assert_eq!(w.now(), SimTime::from_millis(500));
        // Running until a past time is a no-op.
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.now(), SimTime::from_millis(500));
    }

    #[test]
    fn controller_downcast_mismatch_is_none() {
        let mut w = world();
        let idx = w.add_controller(Box::new(Counter {
            ticks: 0,
            saw_time_advance: false,
            last: SimTime::ZERO,
        }));
        assert!(w.controller::<String>(idx).is_none());
        assert!(w.controller::<Counter>(idx + 1).is_none());
        assert!(w.controller_mut::<Counter>(idx).is_some());
    }
}
