//! Runtime error type.

use crate::ids::{JobId, PeId};
use sps_engine::EngineError;
use sps_model::ModelError;
use std::fmt;

/// Errors surfaced by SAM/SRM/broker operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    UnknownJob(JobId),
    UnknownPe(PeId),
    /// No host satisfies a PE's placement constraints.
    PlacementFailed(String),
    /// PE contains operators marked non-restartable.
    NotRestartable(PeId),
    /// The PE is not in a state that allows the requested transition.
    BadPeState(PeId, &'static str),
    /// Operator instantiation or execution failure.
    Engine(EngineError),
    /// ADL validation failure at submission.
    Model(ModelError),
    /// Anything else.
    Invalid(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownJob(j) => write!(f, "unknown job {j}"),
            RuntimeError::UnknownPe(p) => write!(f, "unknown PE {p}"),
            RuntimeError::PlacementFailed(m) => write!(f, "placement failed: {m}"),
            RuntimeError::NotRestartable(p) => write!(f, "PE {p} is not restartable"),
            RuntimeError::BadPeState(p, want) => {
                write!(f, "PE {p} is not in the required state ({want})")
            }
            RuntimeError::Engine(e) => write!(f, "engine error: {e}"),
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
            RuntimeError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<EngineError> for RuntimeError {
    fn from(e: EngineError) -> Self {
        RuntimeError::Engine(e)
    }
}

impl From<ModelError> for RuntimeError {
    fn from(e: ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        assert!(RuntimeError::UnknownJob(JobId(1))
            .to_string()
            .contains("job1"));
        assert!(RuntimeError::PlacementFailed("no hosts".into())
            .to_string()
            .contains("no hosts"));
        let e: RuntimeError = EngineError::UnknownOperatorKind("X".into()).into();
        assert!(matches!(e, RuntimeError::Engine(_)));
        let e: RuntimeError = ModelError::Unknown("y".into()).into();
        assert!(matches!(e, RuntimeError::Model(_)));
    }
}
