//! The runtime kernel: coordinates SAM, SRM, the cluster, and the broker.
//!
//! Kernel methods are the simulated RPC surface the ORCA service calls ("the
//! ORCA service acts as a proxy to issue job submission and control
//! commands", §3): job submission with placement-constraint resolution,
//! cancellation, PE stop/restart/kill, host failure, and metric routing.
//! [`Kernel::quantum`] advances the whole distributed system by one
//! scheduling quantum.

use crate::broker::{BackupEntry, BackupItem, Broker, ChannelKey, UbStats, UpstreamBackup};
use crate::ckpt::{CheckpointPolicy, CheckpointStore};
use crate::cluster::{Cluster, PeProcess, PeStatus};
use crate::error::RuntimeError;
use crate::ids::{JobId, OrcaId, PeId};
use crate::metastore::MetastoreKind;
use crate::sam::{CrashReason, JobInfo, JobStatus, OrcaNotification, Sam};
use crate::srm::Srm;
use sps_engine::metrics::builtin;
use sps_engine::pe::ExportedItem;
use sps_engine::{
    EngineError, MetricKey, OperatorRegistry, PeCheckpoint, PeRuntime, StreamItem, Tuple,
};
use sps_model::adl::Adl;
use sps_model::logical::HostPool;
use sps_sim::{SimDuration, SimRng, SimTime, TraceRing};
use std::collections::{BTreeMap, BTreeSet};

/// Tunable timing/capacity parameters.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// PE scheduling quantum (simulation tick).
    pub quantum: SimDuration,
    /// Work-budget units per PE per quantum.
    pub pe_budget: u32,
    /// HC → SRM metric push period (paper default: 3 s).
    pub metrics_push_period: SimDuration,
    /// Master seed for all deterministic randomness.
    pub seed: u64,
    /// Process spawn latency for PE restarts (the paper's recovery gap:
    /// a restarted replica produces no output while its process starts).
    pub restart_delay: SimDuration,
    /// Checkpoint/restore policy (off by default — the seed behavior).
    pub checkpoint: CheckpointPolicy,
    /// Which metastore implementation backs SAM's durable state (in-memory
    /// by default — the seed behavior, byte-identical).
    pub metastore: MetastoreKind,
    /// How stale a host's heartbeat may grow before SAM declares the host
    /// dead and crashes its PEs (§2.2's failure detection deadline). Only
    /// hosts SAM has heard from at least once are candidates.
    pub liveness_deadline: SimDuration,
    /// How long a crashed control-plane component (ORCA service, SAM) stays
    /// down before its recovery completes.
    pub control_restart_delay: SimDuration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            quantum: SimDuration::from_millis(100),
            pe_budget: 10_000,
            metrics_push_period: SimDuration::from_secs(3),
            seed: 0x5EED,
            restart_delay: SimDuration::from_secs(2),
            checkpoint: CheckpointPolicy::default(),
            metastore: MetastoreKind::Memory,
            liveness_deadline: SimDuration::from_secs(6),
            control_restart_delay: SimDuration::from_secs(2),
        }
    }
}

/// Control-plane fault/recovery counters (campaign-report hooks). All zero
/// on a fault-free run — the report renders them only when any moved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// `CrashOrchestrator` faults taken.
    pub orca_crashes: u64,
    /// ORCA recoveries completed (down window expired).
    pub orca_recoveries: u64,
    /// Notifications found durably queued at ORCA recovery — the backlog
    /// the revived service replays on its next pull.
    pub notifications_replayed: u64,
    /// `RestartSam` recoveries completed.
    pub sam_restarts: u64,
    /// Metastore log ops replayed across SAM recoveries.
    pub meta_ops_replayed: u64,
    /// `PartitionSamHc` faults taken.
    pub hc_partitions: u64,
    /// Hosts SAM declared dead on heartbeat staleness while they were in
    /// fact up. The campaign's control-plane oracle requires zero: injected
    /// partitions are always shorter than the liveness deadline.
    pub false_declarations: u64,
}

impl ControlStats {
    pub fn any(&self) -> bool {
        *self != ControlStats::default()
    }

    pub fn merge(&mut self, other: &ControlStats) {
        self.orca_crashes += other.orca_crashes;
        self.orca_recoveries += other.orca_recoveries;
        self.notifications_replayed += other.notifications_replayed;
        self.sam_restarts += other.sam_restarts;
        self.meta_ops_replayed += other.meta_ops_replayed;
        self.hc_partitions += other.hc_partitions;
        self.false_declarations += other.false_declarations;
    }
}

/// A scheduled fault-injection action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KillTarget {
    Pe(PeId),
    Host(String),
}

/// One PE crash, as observed by SAM's failure-notification path. The
/// campaign harness' notification-conservation oracle checks these against
/// the per-orchestrator notification counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashRecord {
    pub at: SimTime,
    pub pe: PeId,
    /// `None` when the PE was not (or no longer) known to SAM.
    pub job: Option<JobId>,
    /// [`CrashReason::class`] of the failure.
    pub reason: &'static str,
    /// Whether the crashed PE's job had an owning orchestrator (and a
    /// notification was therefore pushed).
    pub owned: bool,
}

/// Why a restart came back with fresh operator state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreshReason {
    /// The kernel's checkpoint policy is off.
    Disabled,
    /// At least one fused operator opted out (`checkpointable = false`).
    NotCheckpointable,
    /// No snapshot has been taken for this PE slot yet.
    NoCheckpoint,
    /// A snapshot existed but no longer matched the container (format
    /// version, PE index, or operator list) and was rejected.
    Incompatible,
    /// The slot's checkpoint chain was reclaimed by the storage budget
    /// before the restart could use it.
    Evicted,
}

impl std::fmt::Display for FreshReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FreshReason::Disabled => "checkpointing disabled",
            FreshReason::NotCheckpointable => "PE not checkpointable",
            FreshReason::NoCheckpoint => "no checkpoint",
            FreshReason::Incompatible => "incompatible checkpoint",
            FreshReason::Evicted => "checkpoint evicted",
        })
    }
}

/// How a PE restart obtained its initial operator state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// State restored from a checkpoint taken at `taken_at`. `verified` is
    /// the runtime's self-check: re-checkpointing the restored container
    /// reproduced the stored digest, i.e. no operator state was dropped or
    /// corrupted on the way back in.
    Restored {
        taken_at: SimTime,
        digest: u64,
        verified: bool,
        ops_restored: usize,
        /// How far behind the chain head the restored generation was:
        /// 0 = the live head, k > 0 = the k-th sealed generation, reached
        /// because every newer generation failed to restore.
        generations_back: usize,
    },
    /// Fresh operator state (checkpointing disabled, PE not checkpointable,
    /// no snapshot yet, or an incompatible snapshot was rejected).
    Fresh { reason: FreshReason },
}

impl RestoreOutcome {
    pub fn restored(&self) -> bool {
        matches!(self, RestoreOutcome::Restored { .. })
    }
}

/// One successful PE restart (per-PE restart history).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestartRecord {
    pub at: SimTime,
    pub old_pe: PeId,
    pub new_pe: PeId,
    pub job: JobId,
    pub host: String,
    /// ADL PE index of the restarted slot.
    pub adl_index: usize,
    /// Whether (and how faithfully) checkpointed state was recovered.
    pub restore: RestoreOutcome,
    /// `nTuplesProcessed` per operator as recorded in the restored
    /// checkpoint (empty for fresh restarts). The campaign's state oracle
    /// checks these monotone counters never go backwards afterwards.
    pub restored_op_counts: Vec<(String, i64)>,
    /// Simulated storage read latency this restart paid before replay
    /// (0 for fresh restarts): added onto `restart_delay` in `up_at`.
    pub restore_ms: u64,
}

/// The assembled runtime.
pub struct Kernel {
    pub config: RuntimeConfig,
    now: SimTime,
    pub cluster: Cluster,
    pub sam: Sam,
    pub srm: Srm,
    pub broker: Broker,
    pub registry: OperatorRegistry,
    pub ckpt: CheckpointStore,
    pub trace: TraceRing,
    rng: SimRng,
    scheduled_kills: Vec<(SimTime, KillTarget)>,
    last_metrics_push: SimTime,
    crash_log: Vec<CrashRecord>,
    restart_log: Vec<RestartRecord>,
    /// Sender-side output buffers + duplicate suppression (active when
    /// `config.checkpoint.upstream_backup`).
    backup: UpstreamBackup,
    /// Checkpoint-restored PEs awaiting their replay at promotion time,
    /// keyed by the replacement PE id → snapshot time the restore rewound
    /// to. Consumed when the PE is promoted `Starting` → `Up`.
    pending_replay: BTreeMap<PeId, SimTime>,
    /// Crashed ORCA services → when their recovery completes. While down, a
    /// service skips its quantum entirely; SAM keeps queueing its
    /// notifications durably.
    orca_down: BTreeMap<OrcaId, SimTime>,
    /// Active `RestartSam` window: SAM serves again (after metastore
    /// recovery) once this time passes.
    sam_down_until: Option<SimTime>,
    /// Active `PartitionSamHc` window: host heartbeats do not reach SAM
    /// until this time passes.
    hc_partition_until: Option<SimTime>,
    control_stats: ControlStats,
}

/// A PE slot is checkpointable iff every operator fused into it opted in
/// (mirrors the `restartable` rule).
fn pe_is_checkpointable(adl: &Adl, adl_index: usize) -> bool {
    adl.operators
        .iter()
        .filter(|o| o.pe == adl_index)
        .all(|o| o.checkpointable)
}

impl Kernel {
    pub fn new(cluster: Cluster, registry: OperatorRegistry, config: RuntimeConfig) -> Self {
        let mut srm = Srm::new();
        for host in cluster.hosts() {
            srm.set_host_status(&host.name, host.up);
        }
        Kernel {
            now: SimTime::ZERO,
            rng: SimRng::new(config.seed),
            // The replicated store's RNG is a separate seeded stream, never
            // a fork of the kernel's live RNG: building (or running) it must
            // not perturb the simulation's draw sequence, so the fault-free
            // campaign digest is identical across store kinds.
            sam: Sam::with_store(config.metastore, config.seed ^ 0x4d45_5441),
            config,
            cluster,
            srm,
            broker: Broker::new(),
            registry,
            ckpt: CheckpointStore::for_policy(&config.checkpoint),
            trace: TraceRing::new(65_536),
            scheduled_kills: Vec::new(),
            last_metrics_push: SimTime::ZERO,
            crash_log: Vec::new(),
            restart_log: Vec::new(),
            backup: UpstreamBackup::new(),
            pending_replay: BTreeMap::new(),
            orca_down: BTreeMap::new(),
            sam_down_until: None,
            hc_partition_until: None,
            control_stats: ControlStats::default(),
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether deliveries are being buffered for exactly-once replay.
    pub fn upstream_backup_enabled(&self) -> bool {
        self.config.checkpoint.enabled() && self.config.checkpoint.upstream_backup
    }

    /// Upstream-backup counters (buffered/replayed/suppressed/trimmed).
    pub fn ub_stats(&self) -> UbStats {
        self.backup.stats()
    }

    // ---- job lifecycle ------------------------------------------------------

    /// Submits an application: validates the ADL, places every PE per its
    /// constraints, spawns the PE processes, and registers import/export
    /// endpoints. Atomic: on placement failure, nothing is left behind.
    pub fn submit_job(&mut self, adl: Adl, owner: Option<OrcaId>) -> Result<JobId, RuntimeError> {
        adl.validate()?;
        for op in &adl.operators {
            if !self.registry.has_kind(&op.kind) {
                return Err(EngineError::UnknownOperatorKind(op.kind.clone()).into());
            }
        }
        let job = self.sam.alloc_job_id();

        let mut placed: Vec<(PeId, String)> = Vec::new();
        let mut reserved: Vec<String> = Vec::new();
        // host-exlocate tag → hosts already used within this submission.
        let mut exlocate_used: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut pe_ids = Vec::with_capacity(adl.pes.len());

        for pe_def in &adl.pes {
            let pool = pe_def.host_pool.as_ref().map(|name| {
                adl.host_pools
                    .iter()
                    .find(|p| &p.name == name)
                    .expect("ADL validated: pool exists")
            });
            let excluded: &BTreeSet<String> = pe_def
                .host_exlocate
                .as_ref()
                .and_then(|tag| exlocate_used.get(tag))
                .unwrap_or(const { &BTreeSet::new() });

            let host = match self.pick_host(job, pool, excluded) {
                Some(h) => h,
                None => {
                    // Roll back everything placed so far.
                    for (pe, _) in &placed {
                        self.cluster.remove_process(*pe);
                    }
                    for host in &reserved {
                        self.sam.unreserve_host(host);
                    }
                    return Err(RuntimeError::PlacementFailed(format!(
                        "no host satisfies constraints of PE {} of {} (pool={:?})",
                        pe_def.index, adl.app_name, pe_def.host_pool
                    )));
                }
            };

            let pe_id = self.sam.alloc_pe_id();
            let runtime =
                PeRuntime::build(&adl, pe_def.index, &self.registry, self.rng.fork(pe_id.0))?;
            self.cluster
                .host_mut(&host)
                .expect("picked host exists")
                .processes
                .insert(
                    pe_id,
                    PeProcess {
                        pe_id,
                        job,
                        adl_index: pe_def.index,
                        status: PeStatus::Up,
                        started_at: self.now,
                        up_at: self.now,
                        runtime,
                    },
                );
            if pool.is_some_and(|p| p.exclusive) && self.sam.host_reservation(&host) != Some(job) {
                // Reserve eagerly so later PEs of this submission pack onto
                // the same hosts.
                self.sam.reserve_host(&host, job);
                reserved.push(host.clone());
            }
            if let Some(tag) = &pe_def.host_exlocate {
                exlocate_used
                    .entry(tag.clone())
                    .or_default()
                    .insert(host.clone());
            }
            placed.push((pe_id, host));
            pe_ids.push(pe_id);
        }

        let exports = adl
            .exports
            .iter()
            .map(|e| (e.op.clone(), e.port, e.spec.clone()))
            .collect::<Vec<_>>();
        let imports = adl
            .imports
            .iter()
            .map(|i| (i.op.clone(), i.spec.clone()))
            .collect::<Vec<_>>();
        self.broker
            .register_job(job, &adl.app_name, exports, imports);

        self.trace.push(
            self.now,
            "sam",
            format!(
                "job {job} ({}) submitted with {} PEs",
                adl.app_name,
                pe_ids.len()
            ),
        );
        self.sam.insert_job(JobInfo {
            id: job,
            app_name: adl.app_name.clone(),
            adl,
            pe_ids,
            status: JobStatus::Running,
            submitted_at: self.now,
            owner,
        });
        Ok(job)
    }

    /// Chooses the least-loaded eligible host for a PE.
    ///
    /// Exclusive pools *pack*: once a job has reserved hosts, later PEs of
    /// the same job prefer those hosts, keeping the exclusive footprint (and
    /// the number of hosts denied to other jobs) minimal — so e.g. three
    /// exclusive replicas fit a three-host cluster (§5.2).
    fn pick_host(
        &self,
        job: JobId,
        pool: Option<&HostPool>,
        excluded: &BTreeSet<String>,
    ) -> Option<String> {
        if pool.is_some_and(|p| p.exclusive) {
            // Prefer a host already reserved for this job.
            let reuse = self
                .cluster
                .hosts()
                .filter(|h| {
                    h.up && !excluded.contains(&h.name)
                        && self.sam.host_reservation(&h.name) == Some(job)
                })
                .map(|h| (h.live_processes(), h.name.as_str()))
                .min();
            if let Some((_, name)) = reuse {
                return Some(name.to_string());
            }
        }
        let mut best: Option<(usize, &str)> = None;
        for host in self.cluster.hosts() {
            if !host.up || excluded.contains(&host.name) {
                continue;
            }
            // Pool membership.
            if let Some(pool) = pool {
                let member = if !pool.hosts.is_empty() {
                    pool.hosts.contains(&host.name)
                } else if let Some(tag) = &pool.tag {
                    host.has_tag(tag)
                } else {
                    true
                };
                if !member {
                    continue;
                }
            }
            // Reservations: a host reserved for another job is off limits.
            match self.sam.host_reservation(&host.name) {
                Some(owner) if owner != job => continue,
                _ => {}
            }
            // Exclusive pools additionally require the host to be free of
            // other jobs' processes.
            if pool.is_some_and(|p| p.exclusive) && host.processes.values().any(|p| p.job != job) {
                continue;
            }
            let load = host.live_processes();
            if best.is_none_or(|(bl, bn)| (load, host.name.as_str()) < (bl, bn)) {
                best = Some((load, &host.name));
            }
        }
        best.map(|(_, name)| name.to_string())
    }

    /// Cancels a job: stops and removes its PEs, releases reservations,
    /// drops its metrics and checkpoints, and dissolves dynamic stream
    /// connections.
    pub fn cancel_job(&mut self, job: JobId) -> Result<(), RuntimeError> {
        let info = self
            .sam
            .remove_job(job)
            .ok_or(RuntimeError::UnknownJob(job))?;
        for pe in &info.pe_ids {
            self.cluster.remove_process(*pe);
            // Belt and braces next to `forget_job` below: every retired PE
            // drops its SRM snapshot on the path that retires it.
            self.srm.forget_pe(job, *pe);
            self.pending_replay.remove(pe);
        }
        self.broker.unregister_job(job);
        self.srm.forget_job(job);
        self.ckpt.forget_job(job);
        self.backup.forget_job(job);
        self.trace.push(
            self.now,
            "sam",
            format!("job {job} ({}) cancelled", info.app_name),
        );
        Ok(())
    }

    /// Restarts a crashed or stopped PE. When checkpointing is enabled
    /// ([`RuntimeConfig::checkpoint`]) and the PE is checkpointable (every
    /// fused operator has `checkpointable = true`), the replacement process
    /// is seeded from the newest stored [`PeCheckpoint`] of this `(job, ADL
    /// PE index)` slot, and the restore is self-verified by re-checkpointing
    /// the revived container and comparing digests. **Fallback:** when
    /// checkpointing is off, no snapshot exists yet, or the stored snapshot
    /// no longer matches the ADL shape, the PE comes back with fresh
    /// operator state — the §5.2 window-refill behavior. The outcome is
    /// recorded in the [`RestartRecord`]. Returns the replacement PE id.
    pub fn restart_pe(&mut self, pe: PeId) -> Result<PeId, RuntimeError> {
        let (job, adl_index) = self.sam.pe_lookup(pe).ok_or(RuntimeError::UnknownPe(pe))?;
        let info = self.sam.job(job).ok_or(RuntimeError::UnknownJob(job))?;
        let restartable = info
            .adl
            .operators
            .iter()
            .filter(|o| o.pe == adl_index)
            .all(|o| o.restartable);
        if !restartable {
            return Err(RuntimeError::NotRestartable(pe));
        }
        let adl = info.adl.clone();
        let pe_def = &adl.pes[adl_index];
        let old_host = self.cluster.host_of_pe(pe).map(str::to_string);

        let pool = pe_def
            .host_pool
            .as_ref()
            .and_then(|name| adl.host_pools.iter().find(|p| &p.name == name));
        // Prefer the previous host when it is still up; otherwise re-place
        // under the original constraints. Placement happens *before* the old
        // process is removed, so a failed restart (no host available) leaves
        // the crashed process in place and a later attempt can still succeed.
        let host = match old_host
            .clone()
            .filter(|h| self.cluster.host(h).is_some_and(|h| h.up))
        {
            Some(h) => h,
            None => self.pick_host(job, pool, &BTreeSet::new()).ok_or_else(|| {
                RuntimeError::PlacementFailed(format!("no host available to restart PE {pe}"))
            })?,
        };
        let new_pe = self.sam.alloc_pe_id();
        let pe_rng = self.rng.fork(new_pe.0);
        let mut runtime = PeRuntime::build(&adl, adl_index, &self.registry, pe_rng.clone())?;

        // Recover operator state from the newest restorable checkpoint
        // generation. Any write still in flight for this slot belongs to
        // the dead incarnation — were it to commit *after* the restore
        // rolled back to an older snapshot, its (newer) head would
        // misrepresent the revived PE's state and, under upstream backup,
        // trim buffered tuples the replacement still needs. Abort it.
        let mut restored_op_counts: Vec<(String, i64)> = Vec::new();
        let mut restore_ms = 0u64;
        let mut restored_sender_pos: Vec<(crate::broker::ChannelKey, u64)> = Vec::new();
        let restore = if !self.config.checkpoint.enabled() {
            RestoreOutcome::Fresh {
                reason: FreshReason::Disabled,
            }
        } else if !pe_is_checkpointable(&adl, adl_index) {
            RestoreOutcome::Fresh {
                reason: FreshReason::NotCheckpointable,
            }
        } else {
            self.ckpt.abort_inflight(job, adl_index);
            let candidates = self.ckpt.restore_candidates(job, adl_index);
            let mut outcome = None;
            for generation in 0..candidates {
                let cand = self
                    .ckpt
                    .restore_candidate(job, adl_index, generation)
                    .expect("generation index in range");
                let stored = cand.ckpt;
                // Harness fault injection: silently lose the last stateful
                // operator's blob. The self-verification below must notice.
                // Only this test-only path pays for a second checkpoint
                // clone.
                let degraded = self.config.checkpoint.lossy_restore.then(|| {
                    let mut c = stored.clone();
                    if let Some(op) = c.ops.iter_mut().rev().find(|o| o.blob.is_some()) {
                        op.blob = None;
                    }
                    c
                });
                match runtime.restore(degraded.as_ref().unwrap_or(&stored)) {
                    Ok(ops_restored) => {
                        // Self-verify: a faithful restore re-serializes to
                        // the stored digest (taken_at is excluded from the
                        // digest).
                        let stored_digest = stored.digest();
                        let verified = runtime.checkpoint(self.now).digest() == stored_digest;
                        restored_op_counts = stored
                            .metrics
                            .iter()
                            .filter_map(|(key, v)| match key.as_ref() {
                                MetricKey::Operator(op, m) if m == builtin::N_TUPLES_PROCESSED => {
                                    Some((op.clone(), *v))
                                }
                                _ => None,
                            })
                            .collect();
                        // Reading the chain back from storage costs
                        // sim-time, paid on top of the spawn delay below.
                        restore_ms = self
                            .ckpt
                            .storage()
                            .restore_latency(cand.read_bytes)
                            .as_millis();
                        restored_sender_pos = cand.sender_pos;
                        self.ckpt.count_restore();
                        outcome = Some(RestoreOutcome::Restored {
                            taken_at: stored.taken_at,
                            digest: stored_digest,
                            verified,
                            ops_restored,
                            generations_back: generation,
                        });
                        break;
                    }
                    Err(e) => {
                        // Partial restores corrupt state: discard and fall
                        // back to the next-oldest sealed generation (fresh
                        // state once none are left).
                        runtime =
                            PeRuntime::build(&adl, adl_index, &self.registry, pe_rng.clone())?;
                        self.trace.push(
                            self.now,
                            "ckpt",
                            format!("restore of PE slot {job}/{adl_index} rejected: {e}"),
                        );
                    }
                }
            }
            match outcome {
                Some(o) => o,
                None => {
                    self.ckpt.count_fallback();
                    let reason = if candidates > 0 {
                        FreshReason::Incompatible
                    } else if self.ckpt.was_evicted(job, adl_index) {
                        FreshReason::Evicted
                    } else {
                        FreshReason::NoCheckpoint
                    };
                    RestoreOutcome::Fresh { reason }
                }
            }
        };

        // Upstream-backup bookkeeping for the swap below.
        self.pending_replay.remove(&pe);
        if self.upstream_backup_enabled() {
            if let RestoreOutcome::Restored { taken_at, .. } = &restore {
                // Roll the sender-side duplicate-suppression counters back
                // in lockstep with the restored state, so the deterministic
                // replay walks the already-delivered range back up under
                // the high-water marks instead of past them.
                self.backup
                    .rollback_sender(job, adl_index, &restored_sender_pos);
                // The revived PE equals its snapshot; an immediate periodic
                // re-snapshot would be pure overhead (satellite cadence fix).
                let quanta_now = self.now.as_millis() / self.config.quantum.as_millis();
                self.ckpt.mark_snapshot_quantum(job, adl_index, quanta_now);
                // Replay the buffered gap once the process finishes
                // spawning (`Starting` → `Up`), not before: a replay into a
                // process that dies mid-spawn must be re-runnable.
                self.pending_replay.insert(new_pe, *taken_at);
            } else {
                // Fresh state: the buffered gap assumes the checkpoint base
                // and is meaningless to replay into a blank container.
                self.backup.drop_receiver((job, adl_index));
            }
        }

        // Placement and build succeeded: swap the processes.
        self.cluster.remove_process(pe);
        // Exclusive-pool relocation migrates the reservation: the claim on
        // the dead host follows the job to its new home, so a later revive
        // returns that host to the free pool instead of leaving it locked by
        // a job that no longer lives there. The old claim is released only
        // once no process of the job remains there (other crashed PEs of the
        // same job may still await their own relocation).
        if pool.is_some_and(|p| p.exclusive) {
            if let Some(old) = &old_host {
                if old != &host
                    && self.sam.host_reservation(old) == Some(job)
                    && self
                        .cluster
                        .host(old)
                        .is_none_or(|h| !h.processes.values().any(|p| p.job == job))
                {
                    self.sam.unreserve_host(old);
                }
            }
            self.sam.reserve_host(&host, job);
        }
        self.cluster
            .host_mut(&host)
            .expect("host exists")
            .processes
            .insert(
                new_pe,
                PeProcess {
                    pe_id: new_pe,
                    job,
                    adl_index,
                    status: PeStatus::Starting,
                    started_at: self.now,
                    // Restores pay the storage read latency on top of the
                    // spawn delay: replay begins only once the chain has
                    // been read back.
                    up_at: self.now
                        + self.config.restart_delay
                        + SimDuration::from_millis(restore_ms),
                    runtime,
                },
            );
        self.sam.replace_pe(job, adl_index, new_pe);
        self.srm.forget_pe(job, pe);
        let how = match &restore {
            RestoreOutcome::Restored { taken_at, .. } => {
                format!("state restored from checkpoint @{taken_at}")
            }
            RestoreOutcome::Fresh { reason } => format!("fresh state ({reason})"),
        };
        self.restart_log.push(RestartRecord {
            at: self.now,
            old_pe: pe,
            new_pe,
            job,
            host: host.clone(),
            adl_index,
            restore,
            restored_op_counts,
            restore_ms,
        });
        self.trace.push(
            self.now,
            "sam",
            format!("PE {pe} of job {job} restarted as {new_pe} on {host}, {how}"),
        );
        Ok(new_pe)
    }

    /// Stops a PE without removing it (it can be restarted later).
    pub fn stop_pe(&mut self, pe: PeId) -> Result<(), RuntimeError> {
        let proc = self
            .cluster
            .process_mut(pe)
            .ok_or(RuntimeError::UnknownPe(pe))?;
        if proc.status != PeStatus::Up {
            return Err(RuntimeError::BadPeState(pe, "up"));
        }
        proc.status = PeStatus::Stopped;
        self.trace.push(self.now, "sam", format!("PE {pe} stopped"));
        Ok(())
    }

    /// Kills a PE process (fault injection / external crash). A `Starting`
    /// process can crash just like an `Up` one — mid-spawn is exactly when
    /// kill-during-restart faults land.
    pub fn kill_pe(&mut self, pe: PeId) -> Result<(), RuntimeError> {
        let proc = self
            .cluster
            .process_mut(pe)
            .ok_or(RuntimeError::UnknownPe(pe))?;
        if !matches!(proc.status, PeStatus::Up | PeStatus::Starting) {
            return Err(RuntimeError::BadPeState(pe, "up or starting"));
        }
        proc.status = PeStatus::Crashed;
        self.trace.push(self.now, "hc", format!("PE {pe} killed"));
        self.notify_pe_failure(pe, CrashReason::Killed);
        Ok(())
    }

    /// Takes a host down: all its live PEs crash with `HostFailure`.
    pub fn kill_host(&mut self, host_name: &str) -> Result<(), RuntimeError> {
        let host = self
            .cluster
            .host_mut(host_name)
            .ok_or_else(|| RuntimeError::Invalid(format!("unknown host {host_name}")))?;
        host.up = false;
        // `Starting` processes die with the host too: otherwise a PE whose
        // restart was in flight when the host failed would sit `Starting`
        // forever (the promotion loop skips down hosts) with nobody notified.
        let victims: Vec<PeId> = host
            .processes
            .values_mut()
            .filter(|p| matches!(p.status, PeStatus::Up | PeStatus::Starting))
            .map(|p| {
                p.status = PeStatus::Crashed;
                p.pe_id
            })
            .collect();
        self.srm.set_host_status(host_name, false);
        // A down host sends no heartbeats; forget its last one so the
        // liveness deadline never "detects" a failure SAM already handled.
        self.sam.clear_heartbeat(host_name);
        self.trace.push(
            self.now,
            "srm",
            format!("host {host_name} down ({} PEs lost)", victims.len()),
        );
        for pe in victims {
            self.notify_pe_failure(pe, CrashReason::HostFailure);
        }
        Ok(())
    }

    /// Brings a host back (recovered hardware). Crashed PEs stay crashed
    /// until explicitly restarted.
    pub fn revive_host(&mut self, host_name: &str) -> Result<(), RuntimeError> {
        let host = self
            .cluster
            .host_mut(host_name)
            .ok_or_else(|| RuntimeError::Invalid(format!("unknown host {host_name}")))?;
        host.up = true;
        self.srm.set_host_status(host_name, true);
        // An immediate heartbeat: the revived host must get a full deadline
        // of grace even if a partition window is still open.
        let now = self.now;
        self.sam.record_heartbeat(host_name, now);
        self.trace
            .push(self.now, "srm", format!("host {host_name} up"));
        Ok(())
    }

    // ---- control-plane faults (§3: the middleware itself is crashable) -----

    /// Crashes a registered ORCA service: it skips its quanta until the
    /// recovery completes at `now + control_restart_delay`. SAM keeps
    /// queueing the service's notifications durably throughout; on recovery
    /// the backlog is replayed into the service's next pull. Returns false
    /// for an unknown orchestrator.
    pub fn crash_orchestrator(&mut self, orca: OrcaId) -> bool {
        if !self.sam.orchestrators().contains(&orca) {
            return false;
        }
        let until = self.now + self.config.control_restart_delay;
        self.orca_down.insert(orca, until);
        self.control_stats.orca_crashes += 1;
        self.trace.push(
            self.now,
            "faults",
            format!("orchestrator {orca} crashed, recovery at {until}"),
        );
        true
    }

    /// Whether an ORCA service is inside a crash window (its controller
    /// must skip its quantum).
    pub fn orca_is_down(&self, orca: OrcaId) -> bool {
        self.orca_down.contains_key(&orca)
    }

    /// Restarts SAM: the daemon goes unavailable (drains return empty — the
    /// explicit Unavailable path) until `now + control_restart_delay`, when
    /// the metastore recovers (a logging store replays its op log,
    /// digest-verified) and SAM serves again. Returns false if a restart
    /// window is already open.
    pub fn restart_sam(&mut self) -> bool {
        if self.sam_down_until.is_some() {
            return false;
        }
        let until = self.now + self.config.control_restart_delay;
        self.sam_down_until = Some(until);
        self.sam.begin_restart();
        self.trace.push(
            self.now,
            "faults",
            format!("SAM restarting, recovery at {until}"),
        );
        true
    }

    /// Partitions SAM from the host controllers for `duration`: heartbeats
    /// stop arriving, and the liveness deadline starts running down against
    /// every host's last recorded heartbeat. Injected partitions are
    /// bounded below the deadline, so a correct SAM declares nobody dead.
    pub fn partition_sam_hc(&mut self, duration: SimDuration) {
        let until = self.now + duration;
        // Overlapping partitions extend, never shorten, the window.
        if self.hc_partition_until.is_none_or(|t| t < until) {
            self.hc_partition_until = Some(until);
        }
        self.control_stats.hc_partitions += 1;
        self.trace.push(
            self.now,
            "faults",
            format!("SAM/HC partition until {until}"),
        );
    }

    pub fn control_stats(&self) -> ControlStats {
        self.control_stats
    }

    /// SAM's failure-detection verdict on a heartbeat-stale host: crash its
    /// PEs with `HostFailure`. The host process itself keeps running (it is
    /// merely unreachable), which is exactly why a declaration before the
    /// deadline is a *false* one — counted, and required zero by the
    /// control-plane oracle.
    fn declare_host_dead(&mut self, host_name: &str) {
        self.sam.clear_heartbeat(host_name);
        let Some(host) = self.cluster.host_mut(host_name) else {
            return;
        };
        let victims: Vec<PeId> = host
            .processes
            .values_mut()
            .filter(|p| matches!(p.status, PeStatus::Up | PeStatus::Starting))
            .map(|p| {
                p.status = PeStatus::Crashed;
                p.pe_id
            })
            .collect();
        self.control_stats.false_declarations += 1;
        self.trace.push(
            self.now,
            "sam",
            format!(
                "host {host_name} declared dead on heartbeat staleness \
                 ({} PEs crashed)",
                victims.len()
            ),
        );
        for pe in victims {
            self.notify_pe_failure(pe, CrashReason::HostFailure);
        }
    }

    /// Expires control-fault windows and runs the heartbeat/liveness
    /// machinery for one quantum. On a fault-free run this records
    /// heartbeats (volatile, traceless, RNG-free) and nothing else — the
    /// campaign digest does not move.
    fn control_plane_quantum(&mut self) {
        // ORCA recoveries: the service resumes next quantum; its durable
        // notification backlog is what it replays.
        let recovered: Vec<OrcaId> = self
            .orca_down
            .iter()
            .filter(|(_, &until)| self.now >= until)
            .map(|(&o, _)| o)
            .collect();
        for orca in recovered {
            self.orca_down.remove(&orca);
            let backlog = self.sam.notifications_pending(orca) as u64;
            self.control_stats.orca_recoveries += 1;
            self.control_stats.notifications_replayed += backlog;
            self.trace.push(
                self.now,
                "faults",
                format!("orchestrator {orca} recovered, replaying {backlog} notifications"),
            );
        }

        // SAM recovery: the metastore rebuilds (and verifies) its tables.
        if self.sam_down_until.is_some_and(|until| self.now >= until) {
            self.sam_down_until = None;
            let rec = self.sam.complete_restart();
            self.control_stats.sam_restarts += 1;
            self.control_stats.meta_ops_replayed += rec.ops_replayed;
            self.trace.push(
                self.now,
                "faults",
                format!("SAM recovered, {} metastore ops replayed", rec.ops_replayed),
            );
        }

        // Partition expiry.
        if self
            .hc_partition_until
            .is_some_and(|until| self.now >= until)
        {
            self.hc_partition_until = None;
            self.trace
                .push(self.now, "faults", "SAM/HC partition healed".to_string());
        }

        // Heartbeats: every up host's controller pings SAM each quantum,
        // unless the partition swallows them.
        if self.hc_partition_until.is_none() {
            let now = self.now;
            let names: Vec<String> = self
                .cluster
                .hosts()
                .filter(|h| h.up)
                .map(|h| h.name.clone())
                .collect();
            for name in names {
                self.sam.record_heartbeat(&name, now);
            }
        }

        // Failure detection: hosts whose last heartbeat outlived the
        // deadline. Unreachable on the fault-free path (heartbeats land
        // every quantum) and under generated plans (partition durations are
        // bounded below the deadline) — a declaration here is a modeling
        // bug the oracle catches via `false_declarations`.
        let stale = self
            .sam
            .stale_hosts(self.now, self.config.liveness_deadline);
        for host in stale {
            self.declare_host_dead(&host);
        }
    }

    /// Schedules a fault injection at an absolute simulation time.
    pub fn schedule_kill(&mut self, at: SimTime, target: KillTarget) {
        self.scheduled_kills.push((at, target));
        self.scheduled_kills.sort_by_key(|(t, _)| *t);
    }

    fn notify_pe_failure(&mut self, pe: PeId, reason: CrashReason) {
        let lookup = self.sam.pe_lookup(pe);
        let owner = lookup.and_then(|(job, _)| self.sam.job(job).and_then(|j| j.owner));
        // A dead process pushes no more metrics; drop its stale SRM snapshot
        // so metric consumers only ever see live state. Previously only the
        // `restart_pe` path forgot per-PE metrics, so `kill_host` cascades
        // (and crashes of PEs that are never restarted) left stale
        // `MetricSnapshot`s behind.
        if let Some((job, _)) = lookup {
            self.srm.forget_pe(job, pe);
        }
        self.crash_log.push(CrashRecord {
            at: self.now,
            pe,
            job: lookup.map(|(job, _)| job),
            reason: reason.class(),
            owned: owner.is_some(),
        });
        let Some((job, adl_index)) = lookup else {
            return;
        };
        let Some(owner) = owner else {
            return; // unmanaged job: nobody to tell
        };
        let now = self.now;
        self.sam.push_notification(
            owner,
            OrcaNotification::PeFailure {
                job,
                pe,
                adl_index,
                reason,
                detected_at: now,
            },
        );
    }

    // ---- introspection used by tests, harnesses, and the ORCA service ------

    /// PE id of a job's ADL PE index.
    pub fn pe_id_of(&self, job: JobId, adl_index: usize) -> Option<PeId> {
        self.sam.job(job)?.pe_ids.get(adl_index).copied()
    }

    pub fn pe_status(&self, pe: PeId) -> Option<PeStatus> {
        self.cluster.process(pe).map(|p| p.status)
    }

    /// Every PE crash observed so far (oldest first).
    pub fn crash_log(&self) -> &[CrashRecord] {
        &self.crash_log
    }

    /// Every successful PE restart so far (oldest first) — the per-PE
    /// restart history the campaign oracles correlate against crashes.
    pub fn restart_log(&self) -> &[RestartRecord] {
        &self.restart_log
    }

    /// Current value of an operator-level metric, read directly from the
    /// live PE runtime (not the SRM snapshot, which lags by up to one push
    /// period). Used by the campaign's state-preservation oracle.
    pub fn op_metric(&self, job: JobId, op_name: &str, metric: &str) -> Option<i64> {
        let info = self.sam.job(job)?;
        let op = info.adl.operator(op_name)?;
        let pe_id = info.pe_ids.get(op.pe)?;
        self.cluster
            .process(*pe_id)?
            .runtime
            .metrics()
            .op_get(op_name, metric)
    }

    /// Whether a job's ADL PE slot is eligible for checkpointing (every
    /// fused operator opted in).
    pub fn pe_checkpointable(&self, job: JobId, adl_index: usize) -> bool {
        self.sam
            .job(job)
            .is_some_and(|info| pe_is_checkpointable(&info.adl, adl_index))
    }

    /// Whether *every* PE slot of a job is checkpointable — the
    /// precondition for the campaign's exactly-once (tap-count equality)
    /// claim under upstream backup.
    pub fn job_checkpointable(&self, job: JobId) -> bool {
        self.sam
            .job(job)
            .is_some_and(|info| (0..info.adl.pes.len()).all(|i| pe_is_checkpointable(&info.adl, i)))
    }

    /// Time of the newest stored snapshot covering a job's ADL PE slot —
    /// how fresh a recovery of that slot would be. Orchestrators use this
    /// as their failover freshness signal.
    pub fn checkpoint_coverage(&self, job: JobId, adl_index: usize) -> Option<SimTime> {
        self.ckpt.latest(job, adl_index).map(|c| c.taken_at)
    }

    /// PE slots whose live checkpoint chain budget eviction must never
    /// reclaim: every `Up`, checkpointable PE (any of them may need to
    /// restore at any moment). Slots of crashed PEs are deliberately *not*
    /// protected — losing a dead PE's chain to the budget is exactly the
    /// recovery cost the storage model exists to expose.
    fn protected_slots(&self) -> BTreeSet<(JobId, usize)> {
        let mut protected = BTreeSet::new();
        for host in self.cluster.hosts() {
            if !host.up {
                continue;
            }
            for proc in host.processes.values() {
                if proc.status == PeStatus::Up
                    && self
                        .sam
                        .job(proc.job)
                        .is_some_and(|info| pe_is_checkpointable(&info.adl, proc.adl_index))
                {
                    protected.insert((proc.job, proc.adl_index));
                }
            }
        }
        protected
    }

    /// Contents of a sink-like operator.
    pub fn tap(&self, job: JobId, op_name: &str) -> Option<Vec<Tuple>> {
        let info = self.sam.job(job)?;
        let op = info.adl.operator(op_name)?;
        let pe_id = info.pe_ids.get(op.pe)?;
        self.cluster.process(*pe_id)?.runtime.tap(op_name)
    }

    /// Injects an item directly into an operator (user-driven test input and
    /// the ORCA command tool's user events).
    pub fn inject(
        &mut self,
        job: JobId,
        op_name: &str,
        port: usize,
        item: StreamItem,
    ) -> Result<(), RuntimeError> {
        let info = self.sam.job(job).ok_or(RuntimeError::UnknownJob(job))?;
        let op = info
            .adl
            .operator(op_name)
            .ok_or_else(|| RuntimeError::Invalid(format!("unknown operator {op_name}")))?;
        let pe_id = info.pe_ids[op.pe];
        let proc = self
            .cluster
            .process_mut(pe_id)
            .ok_or(RuntimeError::UnknownPe(pe_id))?;
        proc.runtime.inject(op_name, port, item)?;
        Ok(())
    }

    // ---- the quantum --------------------------------------------------------

    /// Advances the entire system by one scheduling quantum: fires scheduled
    /// faults, steps every live PE, transports inter-PE and cross-job
    /// deliveries, records crashes, and pushes metrics to SRM on schedule.
    pub fn quantum(&mut self) {
        self.now += self.config.quantum;

        // Control-plane recovery windows, heartbeats, and failure detection.
        self.control_plane_quantum();

        // Scheduled fault injections.
        while let Some((t, _)) = self.scheduled_kills.first() {
            if *t > self.now {
                break;
            }
            let (_, target) = self.scheduled_kills.remove(0);
            let result = match &target {
                KillTarget::Pe(pe) => self.kill_pe(*pe),
                KillTarget::Host(h) => self.kill_host(h),
            };
            if let Err(e) = result {
                self.trace
                    .push(self.now, "faults", format!("scheduled kill failed: {e}"));
            }
        }

        // Promote spawning processes whose start latency elapsed, then
        // replay the buffered upstream-backup gap into any that were
        // restored from a checkpoint.
        let now_promote = self.now;
        let mut promoted: Vec<(PeId, JobId, usize)> = Vec::new();
        for host in self.cluster.hosts_mut() {
            if !host.up {
                continue;
            }
            for proc in host.processes.values_mut() {
                if proc.status == PeStatus::Starting && now_promote >= proc.up_at {
                    proc.status = PeStatus::Up;
                    promoted.push((proc.pe_id, proc.job, proc.adl_index));
                }
            }
        }
        self.run_replays(promoted);

        // Step all live PEs.
        let mut deliveries: Vec<(JobId, usize, sps_engine::RemoteDelivery)> = Vec::new();
        let mut exported: Vec<(JobId, usize, ExportedItem)> = Vec::new();
        let mut crashes: Vec<(PeId, String)> = Vec::new();
        let (now, quantum, budget) = (self.now, self.config.quantum, self.config.pe_budget);
        for host in self.cluster.hosts_mut() {
            if !host.up {
                continue;
            }
            for proc in host.processes.values_mut() {
                if proc.status != PeStatus::Up {
                    continue;
                }
                let out = proc.runtime.step(now, quantum, budget);
                for d in out.remote {
                    deliveries.push((proc.job, proc.adl_index, d));
                }
                for e in out.exported {
                    exported.push((proc.job, proc.adl_index, e));
                }
                if let Some(msg) = out.crashed {
                    proc.status = PeStatus::Crashed;
                    crashes.push((proc.pe_id, msg));
                }
            }
        }

        // Inter-PE transport (one quantum of latency).
        for (job, from_adl, delivery) in deliveries {
            self.transport_remote(job, from_adl, delivery);
        }

        // Cross-job import/export routing.
        for (job, from_adl, item) in exported {
            self.transport_export(job, from_adl, item);
        }

        // Crash notifications (SRM detects, SAM routes to the orchestrator).
        for (pe, msg) in crashes {
            self.trace
                .push(now, "srm", format!("PE {pe} crashed: {msg}"));
            self.notify_pe_failure(pe, CrashReason::OperatorFault(msg));
        }

        // Periodic checkpointing: every `every_quanta` ticks, snapshot each
        // live PE whose operators all opted in. A PE that crashed this very
        // quantum is already `Crashed` and keeps its previous snapshot —
        // exactly the state a subsequent restart should revive. Snapshots
        // run *after* transport, so the captured input queues include this
        // quantum's deliveries — which is what lets the checkpoint commit
        // ack (trim) every buffered delivery up to `taken_at`.
        if self.config.checkpoint.enabled() {
            let quanta_elapsed = self.now.as_millis() / self.config.quantum.as_millis();
            if quanta_elapsed.is_multiple_of(self.config.checkpoint.every_quanta as u64) {
                let half_period = (self.config.checkpoint.every_quanta / 2) as u64;
                let mut snaps: Vec<(JobId, usize, PeCheckpoint)> = Vec::new();
                for host in self.cluster.hosts() {
                    if !host.up {
                        continue;
                    }
                    for proc in host.processes.values() {
                        if proc.status != PeStatus::Up {
                            continue;
                        }
                        let eligible = self
                            .sam
                            .job(proc.job)
                            .is_some_and(|info| pe_is_checkpointable(&info.adl, proc.adl_index));
                        if !eligible {
                            continue;
                        }
                        // Per-PE cadence: a slot captured (or restored) less
                        // than half a period ago skips this boundary — a PE
                        // revived just before the tick would otherwise be
                        // re-snapshotted immediately for no recovery gain.
                        if self
                            .ckpt
                            .quanta_since_snapshot(proc.job, proc.adl_index, quanta_elapsed)
                            .is_some_and(|since| since < half_period)
                        {
                            continue;
                        }
                        snaps.push((proc.job, proc.adl_index, proc.runtime.checkpoint(now)));
                    }
                }
                let ub = self.upstream_backup_enabled();
                for (job, adl_index, ckpt) in snaps {
                    let sender_pos = if ub {
                        self.backup.sender_snapshot(job, adl_index)
                    } else {
                        Vec::new()
                    };
                    // Issue only: the snapshot becomes durable — and acks
                    // the upstream-backup gap — at commit time below.
                    self.ckpt
                        .begin_save(job, adl_index, ckpt, sender_pos, quanta_elapsed, now);
                }
            }
            // Commit every in-flight write whose latency elapsed (with the
            // default zero-latency model that is this quantum's issues, in
            // issue order). Upstream-backup trimming fires here, on durable
            // *commit*, never at issue — an in-flight snapshot must not
            // trim tuples it has not yet covered.
            if self.ckpt.has_pending() {
                let protected = if self.ckpt.storage().budget_bytes > 0 {
                    self.protected_slots()
                } else {
                    BTreeSet::new()
                };
                let ub = self.upstream_backup_enabled();
                for commit in self.ckpt.poll_commits(self.now, &protected) {
                    if commit.accepted {
                        // The commit lands in the metastore's checkpoint
                        // index too, so a recovered SAM can prove which
                        // commits it knew about. The snapshot chain itself
                        // stays authoritative in the CheckpointStore.
                        self.sam
                            .record_ckpt_commit(commit.job, commit.adl_index, commit.taken_at);
                    }
                    if commit.accepted && ub {
                        // Commit acks the buffered gap: the snapshot covers
                        // every delivery at or before `taken_at`.
                        self.backup
                            .trim((commit.job, commit.adl_index), commit.taken_at);
                    }
                }
            }
        }

        // Periodic HC → SRM metric push.
        if self.now.since(self.last_metrics_push) >= self.config.metrics_push_period {
            self.last_metrics_push = self.now;
            self.push_all_metrics();
        }
    }

    /// Delivers one intra-job remote delivery. With upstream backup on,
    /// every emission first advances its channel's position counter —
    /// replay re-emissions at or below the high-water mark are duplicates
    /// of traffic the channel already carried and are suppressed — and
    /// deliveries to checkpointable receivers are retained in the
    /// receiver's backup buffer until a checkpoint commit acks them.
    fn transport_remote(
        &mut self,
        job: JobId,
        from_adl: usize,
        delivery: sps_engine::RemoteDelivery,
    ) {
        let Some(info) = self.sam.job(job) else {
            return;
        };
        let to_adl = delivery.dest.pe;
        let Some(&target_pe) = info.pe_ids.get(to_adl) else {
            return;
        };
        let checkpointable = pe_is_checkpointable(&info.adl, to_adl);
        let ub = self.upstream_backup_enabled();
        let mut delivery = delivery;
        if ub {
            let key = ChannelKey::Intra {
                job,
                from: from_adl,
                to: to_adl,
                op: delivery.dest.op.clone(),
                port: delivery.dest.port,
            };
            let dup = self.backup.advance_n(&key, delivery.items as u64);
            if dup == delivery.items as u64 {
                return; // replay duplicate: this delivery already went through
            }
            if dup > 0 {
                // The run straddles the high-water mark: its first `dup`
                // tuples already went through pre-crash. Deliver only the
                // tail, so the receiver sees each tuple exactly once.
                match sps_engine::codec::split_batch_payload(delivery.payload.clone(), dup as usize)
                {
                    Ok(payload) => {
                        delivery.payload = payload;
                        delivery.items -= dup as u32;
                    }
                    Err(e) => {
                        self.trace
                            .push(self.now, "transport", format!("replay split failed: {e}"));
                        return;
                    }
                }
            }
        }
        let now = self.now;
        if ub && checkpointable {
            self.backup
                .buffer((job, to_adl), now, BackupItem::Remote(delivery.clone()));
        }
        if let Some(proc) = self.cluster.process_mut(target_pe) {
            if proc.status == PeStatus::Up {
                if let Err(e) = proc.runtime.receive(&delivery) {
                    self.trace
                        .push(now, "transport", format!("delivery failed: {e}"));
                }
            }
            // A down receiver misses the delivery exactly as before — but
            // when buffered above, its restored incarnation replays it.
        }
    }

    /// Routes one exported item to every matching importer, with the same
    /// upstream-backup suppression/buffering as [`Self::transport_remote`]
    /// (each `(exporter, importer)` pair is its own channel).
    fn transport_export(&mut self, job: JobId, from_adl: usize, item: ExportedItem) {
        let targets: Vec<(JobId, String)> = self.broker.route(job, &item.op, item.port).to_vec();
        let ub = self.upstream_backup_enabled();
        let now = self.now;
        for (target_job, import_op) in targets {
            let Some(info) = self.sam.job(target_job) else {
                continue;
            };
            let Some(op) = info.adl.operator(&import_op) else {
                continue;
            };
            let to_adl = op.pe;
            let Some(&target_pe) = info.pe_ids.get(to_adl) else {
                continue;
            };
            let checkpointable = pe_is_checkpointable(&info.adl, to_adl);
            if ub {
                let key = ChannelKey::Export {
                    from_job: job,
                    from: from_adl,
                    op: item.op.clone(),
                    port: item.port,
                    to_job: target_job,
                    to_op: import_op.clone(),
                };
                if self.backup.advance(&key) {
                    continue;
                }
            }
            if ub && checkpointable {
                self.backup.buffer(
                    (target_job, to_adl),
                    now,
                    BackupItem::Import {
                        op: import_op.clone(),
                        item: item.item.clone(),
                    },
                );
            }
            if let Some(proc) = self.cluster.process_mut(target_pe) {
                if proc.status == PeStatus::Up {
                    let _ = proc.runtime.inject(&import_op, 0, item.item.clone());
                }
            }
        }
    }

    /// Replays the upstream-backup gap into checkpoint-restored PEs at
    /// promotion time. Buffers are snapshotted for *all* promoted PEs
    /// before any replay runs: an emission one replay forwards to a fellow
    /// restored PE this same quantum is delivered directly (it is already
    /// `Up`) and must not also appear in that PE's replayed gap.
    fn run_replays(&mut self, promoted: Vec<(PeId, JobId, usize)>) {
        if self.pending_replay.is_empty() {
            return;
        }
        let mut replays: Vec<(PeId, JobId, usize, SimTime, Vec<BackupEntry>)> = promoted
            .into_iter()
            .filter_map(|(pe, job, adl_index)| {
                let from = self.pending_replay.remove(&pe)?;
                let entries = self.backup.replay_entries((job, adl_index));
                Some((pe, job, adl_index, from, entries))
            })
            .collect();
        // Upstream slots replay first, so a downstream replica re-executing
        // the same quantum sees deterministic channel-counter evolution.
        replays.sort_by_key(|&(pe, job, adl_index, _, _)| (job, adl_index, pe));
        for (pe, job, adl_index, from, entries) in replays {
            self.replay_gap(pe, job, adl_index, from, entries);
        }
    }

    /// Re-executes one restored PE through every grid quantum between its
    /// snapshot (`from`) and now, injecting the buffered deliveries at
    /// their original delivery quanta between steps. Deterministic
    /// re-execution reproduces the fault-free internal state; re-emissions
    /// the old incarnation already delivered downstream are suppressed by
    /// the channel high-water marks, while emissions the crash swallowed
    /// are delivered — late, but exactly once.
    fn replay_gap(
        &mut self,
        pe: PeId,
        job: JobId,
        adl_index: usize,
        from: SimTime,
        entries: Vec<BackupEntry>,
    ) {
        let (now, quantum, budget) = (self.now, self.config.quantum, self.config.pe_budget);
        let mut outs = Vec::new();
        let mut crashed: Option<String> = None;
        let mut injected = 0u64;
        {
            let Some(proc) = self.cluster.process_mut(pe) else {
                return;
            };
            // Entries at or before the snapshot are already part of the
            // restored state (the commit trims them, but be defensive).
            let mut idx = entries
                .iter()
                .take_while(|e| e.delivered_at <= from)
                .count();
            let mut g = from + quantum;
            while g < now && crashed.is_none() {
                let out = proc.runtime.step(g, quantum, budget);
                if let Some(msg) = &out.crashed {
                    crashed = Some(msg.clone());
                    proc.status = PeStatus::Crashed;
                }
                outs.push(out);
                while idx < entries.len() && entries[idx].delivered_at <= g {
                    match &entries[idx].item {
                        BackupItem::Remote(d) => {
                            let _ = proc.runtime.receive(d);
                        }
                        BackupItem::Import { op, item } => {
                            let _ = proc.runtime.inject(op, 0, item.clone());
                        }
                    }
                    injected += entries[idx].item.items();
                    idx += 1;
                }
                g += quantum;
            }
        }
        self.backup.count_replayed(injected);
        self.trace.push(
            now,
            "ckpt",
            format!(
                "PE {pe} (job {job} slot {adl_index}) replayed {} quanta, \
                 {injected} buffered deliveries",
                outs.len()
            ),
        );
        for out in outs {
            for d in out.remote {
                self.transport_remote(job, adl_index, d);
            }
            for e in out.exported {
                self.transport_export(job, adl_index, e);
            }
        }
        if let Some(msg) = crashed {
            self.trace
                .push(now, "srm", format!("PE {pe} crashed during replay: {msg}"));
            self.notify_pe_failure(pe, CrashReason::OperatorFault(msg));
        }
    }

    /// Every HC snapshots its live PEs' metrics into SRM.
    fn push_all_metrics(&mut self) {
        let now = self.now;
        let mut pushes = Vec::new();
        for host in self.cluster.hosts_mut() {
            if !host.up {
                continue;
            }
            for proc in host.processes.values_mut() {
                if proc.status != PeStatus::Up {
                    continue;
                }
                proc.runtime.refresh_queue_metrics();
                pushes.push((proc.job, proc.pe_id, proc.runtime.metrics().snapshot()));
            }
        }
        for (job, pe, snapshot) in pushes {
            self.srm.push_pe_metrics(job, pe, now, snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_model::compiler::{compile, CompileOptions};
    use sps_model::logical::{
        AppModelBuilder, CompositeGraphBuilder, ExportSpec, HostPool, ImportSpec,
        OperatorInvocation,
    };

    fn kernel(hosts: usize) -> Kernel {
        Kernel::new(
            Cluster::with_hosts(hosts),
            OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        )
    }

    /// beacon → filter → sink, each in its own PE.
    fn pipeline_adl(name: &str, rate: f64) -> Adl {
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", rate),
        );
        m.operator(
            "flt",
            OperatorInvocation::new("Filter").param("predicate", "seq % 2 == 0"),
        );
        m.operator("snk", OperatorInvocation::new("Sink").sink());
        m.pipe("src", "flt");
        m.pipe("flt", "snk");
        let model = AppModelBuilder::new(name)
            .build(m.build().unwrap())
            .unwrap();
        compile(&model, CompileOptions::default()).unwrap()
    }

    fn run(kernel: &mut Kernel, quanta: usize) {
        for _ in 0..quanta {
            kernel.quantum();
        }
    }

    #[test]
    fn submit_and_flow_across_pes() {
        let mut k = kernel(3);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 20); // 2 seconds
        let tap = k.tap(job, "snk").unwrap();
        assert!(!tap.is_empty(), "tuples should reach the sink across PEs");
        // Only even seqs pass the filter.
        assert!(tap.iter().all(|t| t.get_int("seq").unwrap() % 2 == 0));
    }

    #[test]
    fn placement_balances_load() {
        let mut k = kernel(3);
        k.submit_job(pipeline_adl("P", 1.0), None).unwrap();
        let loads: Vec<usize> = k.cluster.hosts().map(|h| h.live_processes()).collect();
        assert_eq!(loads, vec![1, 1, 1]);
    }

    #[test]
    fn submission_is_atomic_on_placement_failure() {
        let mut k = kernel(1);
        // Pool references a host that doesn't exist.
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "a",
            OperatorInvocation::new("Beacon")
                .source()
                .host_pool("ghost_pool"),
        );
        m.operator("b", OperatorInvocation::new("Sink").sink());
        m.pipe("a", "b");
        let mut builder = AppModelBuilder::new("A");
        builder.host_pool(HostPool::explicit("ghost_pool", &["nohost"]));
        let model = builder.build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        assert!(matches!(
            k.submit_job(adl, None),
            Err(RuntimeError::PlacementFailed(_))
        ));
        // Nothing left behind.
        assert_eq!(
            k.cluster.hosts().map(|h| h.processes.len()).sum::<usize>(),
            0
        );
    }

    #[test]
    fn unknown_operator_kind_rejected_at_submit() {
        let mut k = kernel(1);
        let mut m = CompositeGraphBuilder::main();
        m.operator("a", OperatorInvocation::new("Mystery").source());
        let model = AppModelBuilder::new("A").build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        assert!(matches!(
            k.submit_job(adl, None),
            Err(RuntimeError::Engine(EngineError::UnknownOperatorKind(_)))
        ));
    }

    #[test]
    fn cancel_removes_everything() {
        let mut k = kernel(2);
        let job = k.submit_job(pipeline_adl("P", 10.0), None).unwrap();
        run(&mut k, 5);
        k.cancel_job(job).unwrap();
        assert!(k.sam.job(job).is_none());
        assert_eq!(
            k.cluster.hosts().map(|h| h.processes.len()).sum::<usize>(),
            0
        );
        assert!(matches!(
            k.cancel_job(job),
            Err(RuntimeError::UnknownJob(_))
        ));
    }

    #[test]
    fn kill_and_restart_pe_loses_state() {
        let mut k = kernel(2);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10);
        let sink_pe = k.pe_id_of(job, 2).unwrap();
        let before = k.tap(job, "snk").unwrap().len();
        assert!(before > 0);

        k.kill_pe(sink_pe).unwrap();
        assert_eq!(k.pe_status(sink_pe), Some(PeStatus::Crashed));
        // Killing twice is a state error.
        assert!(matches!(
            k.kill_pe(sink_pe),
            Err(RuntimeError::BadPeState(..))
        ));
        run(&mut k, 5); // tuples flowing to a dead PE are lost

        let new_pe = k.restart_pe(sink_pe).unwrap();
        assert_ne!(new_pe, sink_pe);
        // Spawning takes restart_delay before the process is Up.
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Starting));
        run(&mut k, 21); // past the 2 s default restart delay
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Up));
        assert_eq!(k.pe_id_of(job, 2), Some(new_pe));
        // Fresh operator state: the sink forgot its tuples.
        let after_restart = k.tap(job, "snk").unwrap().len();
        assert!(after_restart < before);
    }

    #[test]
    fn non_restartable_pe_refuses_restart() {
        let mut k = kernel(1);
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "a",
            OperatorInvocation::new("Beacon").source().not_restartable(),
        );
        let model = AppModelBuilder::new("A").build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        let job = k.submit_job(adl, None).unwrap();
        let pe = k.pe_id_of(job, 0).unwrap();
        k.kill_pe(pe).unwrap();
        assert!(matches!(
            k.restart_pe(pe),
            Err(RuntimeError::NotRestartable(_))
        ));
    }

    #[test]
    fn host_failure_crashes_pes_and_restart_relocates() {
        let mut k = kernel(2);
        let job = k.submit_job(pipeline_adl("P", 10.0), None).unwrap();
        let pe0 = k.pe_id_of(job, 0).unwrap();
        let host0 = k.cluster.host_of_pe(pe0).unwrap().to_string();
        k.kill_host(&host0).unwrap();
        assert_eq!(k.pe_status(pe0), Some(PeStatus::Crashed));
        assert_eq!(k.srm.host_up(&host0), Some(false));
        // Restart relocates to the surviving host.
        let new_pe = k.restart_pe(pe0).unwrap();
        let new_host = k.cluster.host_of_pe(new_pe).unwrap();
        assert_ne!(new_host, host0);
        // Revive and verify status propagates.
        k.revive_host(&host0).unwrap();
        assert_eq!(k.srm.host_up(&host0), Some(true));
    }

    /// Regression: `kill_host` racing an in-flight `restart_pe` on the same
    /// host. The replacement process is still `Starting` when the host dies;
    /// it must crash with everything else (and notify the owner) rather than
    /// sit `Starting` forever on a downed host.
    #[test]
    fn kill_host_crashes_inflight_restarts() {
        let mut k = kernel(2);
        let orca = k.sam.register_orchestrator();
        let job = k.submit_job(pipeline_adl("P", 10.0), Some(orca)).unwrap();
        run(&mut k, 5);
        let pe = k.pe_id_of(job, 0).unwrap();
        let host = k.cluster.host_of_pe(pe).unwrap().to_string();
        k.kill_pe(pe).unwrap();
        // Restart lands on the same (still-up) host and is mid-spawn…
        let new_pe = k.restart_pe(pe).unwrap();
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Starting));
        assert_eq!(k.cluster.host_of_pe(new_pe), Some(host.as_str()));
        // …when the host goes down.
        k.kill_host(&host).unwrap();
        assert_eq!(
            k.pe_status(new_pe),
            Some(PeStatus::Crashed),
            "a Starting PE must die with its host"
        );
        // Every crash was pushed to the owner: the original kill, the
        // Starting replacement, and the host's other Up PE (3 PEs across 2
        // hosts → the killed host also ran one sibling).
        let notes = k.sam.drain_notifications(orca);
        assert_eq!(notes.len(), 3);
        // Reviving the host must not resurrect the crashed process.
        k.revive_host(&host).unwrap();
        run(&mut k, 30);
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Crashed));
        // The crashed replacement restarts cleanly on the surviving host.
        let third = k.restart_pe(new_pe).unwrap();
        run(&mut k, 21);
        assert_eq!(k.pe_status(third), Some(PeStatus::Up));
        // The whole history is in the logs: three crashes, two restarts.
        assert_eq!(k.crash_log().len(), 3);
        assert!(k.crash_log().iter().all(|c| c.owned));
        let restarted: Vec<_> = k.restart_log().iter().map(|r| r.old_pe).collect();
        assert_eq!(restarted, vec![pe, new_pe]);
    }

    /// A scheduled kill that lands during the restart gap (the PE is
    /// `Starting`) takes effect instead of erroring out.
    #[test]
    fn scheduled_kill_during_restart_gap_crashes_pe() {
        let mut k = kernel(1);
        let job = k.submit_job(pipeline_adl("P", 10.0), None).unwrap();
        let pe = k.pe_id_of(job, 0).unwrap();
        k.kill_pe(pe).unwrap();
        let new_pe = k.restart_pe(pe).unwrap();
        k.schedule_kill(SimTime::from_millis(500), KillTarget::Pe(new_pe));
        run(&mut k, 5); // restart delay is 2 s: still Starting at 500 ms
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Crashed));
        assert!(k.trace.find("scheduled kill failed").is_empty());
    }

    #[test]
    fn exclusive_restart_relocation_migrates_reservation() {
        let mut k = kernel(3);
        let mut m = CompositeGraphBuilder::main();
        m.operator("src", OperatorInvocation::new("Beacon").source());
        let model = AppModelBuilder::new("R").build(m.build().unwrap()).unwrap();
        let mut adl = compile(&model, CompileOptions::default()).unwrap();
        adl.make_host_pools_exclusive("R");
        let job = k.submit_job(adl, None).unwrap();
        let pe = k.pe_id_of(job, 0).unwrap();
        let old_host = k.cluster.host_of_pe(pe).unwrap().to_string();
        assert_eq!(k.sam.host_reservation(&old_host), Some(job));
        k.kill_host(&old_host).unwrap();
        let new_pe = k.restart_pe(pe).unwrap();
        let new_host = k.cluster.host_of_pe(new_pe).unwrap().to_string();
        assert_ne!(new_host, old_host);
        // The reservation followed the job; the dead host is free again.
        assert_eq!(k.sam.host_reservation(&old_host), None);
        assert_eq!(k.sam.host_reservation(&new_host), Some(job));
    }

    /// A failed restart (no host available) must leave the crashed process
    /// in place so the restart can be retried once capacity returns.
    #[test]
    fn failed_restart_is_retryable() {
        let mut k = kernel(1);
        let job = k.submit_job(pipeline_adl("P", 10.0), None).unwrap();
        let pe = k.pe_id_of(job, 0).unwrap();
        k.kill_host("host0").unwrap();
        assert!(matches!(
            k.restart_pe(pe),
            Err(RuntimeError::PlacementFailed(_))
        ));
        // The process survived the failed attempt…
        assert_eq!(k.pe_status(pe), Some(PeStatus::Crashed));
        // …and the retry succeeds after the host comes back.
        k.revive_host("host0").unwrap();
        let new_pe = k.restart_pe(pe).unwrap();
        run(&mut k, 21);
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Up));
    }

    /// Migration releases the old host's exclusive claim only after the
    /// *last* process of the job has left it: with two crashed PEs on the
    /// dead host, the first relocation must not open the host to others.
    #[test]
    fn partial_relocation_keeps_old_reservation_until_empty() {
        let mut k = kernel(3);
        let mut m = CompositeGraphBuilder::main();
        m.operator("a", OperatorInvocation::new("Beacon").source());
        m.operator("b", OperatorInvocation::new("Beacon").source());
        let model = AppModelBuilder::new("R").build(m.build().unwrap()).unwrap();
        let mut adl = compile(&model, CompileOptions::default()).unwrap();
        adl.make_host_pools_exclusive("R");
        let job = k.submit_job(adl, None).unwrap();
        let (pe_a, pe_b) = (k.pe_id_of(job, 0).unwrap(), k.pe_id_of(job, 1).unwrap());
        // Exclusive pools pack: both PEs share one reserved host.
        let old_host = k.cluster.host_of_pe(pe_a).unwrap().to_string();
        assert_eq!(k.cluster.host_of_pe(pe_b), Some(old_host.as_str()));
        k.kill_host(&old_host).unwrap();

        let new_a = k.restart_pe(pe_a).unwrap();
        let new_host = k.cluster.host_of_pe(new_a).unwrap().to_string();
        assert_ne!(new_host, old_host);
        // pe_b still sits crashed on the old host → the claim stays.
        assert_eq!(k.sam.host_reservation(&old_host), Some(job));
        assert_eq!(k.sam.host_reservation(&new_host), Some(job));

        let new_b = k.restart_pe(pe_b).unwrap();
        // The second relocation packs onto the job's new home and finally
        // releases the emptied old host.
        assert_eq!(k.cluster.host_of_pe(new_b), Some(new_host.as_str()));
        assert_eq!(k.sam.host_reservation(&old_host), None);
        assert_eq!(k.sam.host_reservation(&new_host), Some(job));
    }

    #[test]
    fn operator_fault_notifies_owner_orchestrator() {
        let mut k = kernel(1);
        let orca = k.sam.register_orchestrator();
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", 50.0),
        );
        m.operator(
            "bomb",
            OperatorInvocation::new("FaultInject").param("fault_after", 3i64),
        );
        m.pipe("src", "bomb");
        let model = AppModelBuilder::new("Boom")
            .build(m.build().unwrap())
            .unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        let job = k.submit_job(adl, Some(orca)).unwrap();
        run(&mut k, 30);
        let notes = k.sam.drain_notifications(orca);
        assert_eq!(notes.len(), 1);
        match &notes[0] {
            OrcaNotification::PeFailure { job: j, reason, .. } => {
                assert_eq!(*j, job);
                assert!(matches!(reason, CrashReason::OperatorFault(_)));
            }
        }
    }

    #[test]
    fn unmanaged_job_failures_notify_nobody() {
        let mut k = kernel(1);
        let orca = k.sam.register_orchestrator();
        let job = k.submit_job(pipeline_adl("P", 10.0), None).unwrap();
        let pe = k.pe_id_of(job, 0).unwrap();
        k.kill_pe(pe).unwrap();
        assert!(k.sam.drain_notifications(orca).is_empty());
    }

    #[test]
    fn scheduled_kill_fires_at_time() {
        let mut k = kernel(1);
        let job = k.submit_job(pipeline_adl("P", 10.0), None).unwrap();
        let pe = k.pe_id_of(job, 0).unwrap();
        k.schedule_kill(SimTime::from_millis(500), KillTarget::Pe(pe));
        run(&mut k, 4); // t = 400ms
        assert_eq!(k.pe_status(pe), Some(PeStatus::Up));
        run(&mut k, 1); // t = 500ms
        assert_eq!(k.pe_status(pe), Some(PeStatus::Crashed));
    }

    #[test]
    fn metrics_flow_to_srm_on_schedule() {
        let mut k = kernel(1);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 29); // 2.9 s: no push yet at default 3 s period
        assert!(k.srm.query_jobs(&[job]).is_empty());
        run(&mut k, 1); // 3.0 s
        let snap = &k.srm.query_jobs(&[job])[&job];
        assert_eq!(snap.collected_at, SimTime::from_secs(3));
        let processed = snap
            .values
            .iter()
            .find(|(key, _)| {
                key.operator_name() == Some("flt")
                    && key.metric_name() == "nTuplesProcessed"
                    && matches!(key.as_ref(), sps_engine::MetricKey::Operator(..))
            })
            .map(|(_, v)| *v)
            .unwrap();
        assert!(processed > 100, "got {processed}");
    }

    #[test]
    fn import_export_connects_two_jobs() {
        let mut k = kernel(2);
        // Producer exports its filter output.
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", 50.0),
        );
        m.operator(
            "out",
            OperatorInvocation::new("Export").export(0, ExportSpec::by_id("evens")),
        );
        m.pipe("src", "out");
        let producer = AppModelBuilder::new("Producer")
            .build(m.build().unwrap())
            .unwrap();

        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "in",
            OperatorInvocation::new("Import")
                .source()
                .import_spec(ImportSpec::by_id("evens")),
        );
        m.operator("snk", OperatorInvocation::new("Sink").sink());
        m.pipe("in", "snk");
        let consumer = AppModelBuilder::new("Consumer")
            .build(m.build().unwrap())
            .unwrap();

        let _p = k
            .submit_job(compile(&producer, CompileOptions::default()).unwrap(), None)
            .unwrap();
        let c = k
            .submit_job(compile(&consumer, CompileOptions::default()).unwrap(), None)
            .unwrap();
        assert_eq!(k.broker.num_connections(), 1);
        run(&mut k, 20);
        let tap = k.tap(c, "snk").unwrap();
        assert!(
            !tap.is_empty(),
            "imported tuples should reach consumer sink"
        );
        // Cancelling the consumer dissolves the connection.
        k.cancel_job(c).unwrap();
        assert_eq!(k.broker.num_connections(), 0);
    }

    #[test]
    fn exclusive_pools_keep_jobs_apart() {
        let mut k = kernel(3);
        let make = |name: &str| {
            let mut m = CompositeGraphBuilder::main();
            m.operator("src", OperatorInvocation::new("Beacon").source());
            let model = AppModelBuilder::new(name)
                .build(m.build().unwrap())
                .unwrap();
            let mut adl = compile(&model, CompileOptions::default()).unwrap();
            adl.make_host_pools_exclusive(name);
            adl
        };
        let j1 = k.submit_job(make("R0"), None).unwrap();
        let j2 = k.submit_job(make("R1"), None).unwrap();
        let h1 = k
            .cluster
            .host_of_pe(k.pe_id_of(j1, 0).unwrap())
            .unwrap()
            .to_string();
        let h2 = k
            .cluster
            .host_of_pe(k.pe_id_of(j2, 0).unwrap())
            .unwrap()
            .to_string();
        assert_ne!(h1, h2, "exclusive jobs must not share hosts");
        // A third exclusive job fits on the remaining host; a fourth fails.
        let _j3 = k.submit_job(make("R2"), None).unwrap();
        assert!(matches!(
            k.submit_job(make("R3"), None),
            Err(RuntimeError::PlacementFailed(_))
        ));
    }

    #[test]
    fn host_exlocation_spreads_pes() {
        let mut k = kernel(2);
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "a",
            OperatorInvocation::new("Beacon")
                .source()
                .host_exlocate("spread"),
        );
        m.operator(
            "b",
            OperatorInvocation::new("Beacon")
                .source()
                .host_exlocate("spread"),
        );
        let model = AppModelBuilder::new("S").build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        let job = k.submit_job(adl, None).unwrap();
        let h0 = k.cluster.host_of_pe(k.pe_id_of(job, 0).unwrap()).unwrap();
        let h1 = k.cluster.host_of_pe(k.pe_id_of(job, 1).unwrap()).unwrap();
        assert_ne!(h0, h1);
    }

    #[test]
    fn inject_reaches_operator() {
        let mut k = kernel(1);
        let job = k.submit_job(pipeline_adl("P", 0.0), None).unwrap();
        k.inject(
            job,
            "snk",
            0,
            StreamItem::Tuple(Tuple::new().with("seq", 0i64)),
        )
        .unwrap();
        run(&mut k, 2);
        assert_eq!(k.tap(job, "snk").unwrap().len(), 1);
        assert!(k
            .inject(job, "ghost", 0, StreamItem::Punct(sps_engine::Punct::Final))
            .is_err());
    }

    fn ckpt_kernel(hosts: usize, every_quanta: u32) -> Kernel {
        Kernel::new(
            Cluster::with_hosts(hosts),
            OperatorRegistry::with_builtins(),
            RuntimeConfig {
                checkpoint: crate::ckpt::CheckpointPolicy::every(every_quanta),
                ..RuntimeConfig::default()
            },
        )
    }

    #[test]
    fn restart_restores_newest_checkpoint() {
        let mut k = ckpt_kernel(2, 5); // checkpoint every 500 ms
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10); // 1 s: two checkpoint rounds taken
        assert!(k.ckpt.saved() > 0);
        assert!(k.ckpt.latest(job, 2).is_some());
        let sink_pe = k.pe_id_of(job, 2).unwrap();
        let before = k.tap(job, "snk").unwrap().len();
        assert!(before > 0);

        k.kill_pe(sink_pe).unwrap();
        let new_pe = k.restart_pe(sink_pe).unwrap();
        // Even while still `Starting`, the restored container already holds
        // the checkpointed sink contents.
        let after = k.tap(job, "snk").unwrap().len();
        assert!(after > 0, "restored sink must keep pre-crash tuples");
        assert!(after <= before); // at most the checkpoint lag is lost
        let rec = k.restart_log().last().unwrap().clone();
        assert_eq!(rec.new_pe, new_pe);
        assert_eq!(rec.adl_index, 2);
        match rec.restore {
            RestoreOutcome::Restored {
                verified,
                ops_restored,
                ..
            } => {
                assert!(verified, "self-verification must pass");
                assert!(ops_restored >= 1);
            }
            other => panic!("expected restored state, got {other:?}"),
        }
        assert!(rec
            .restored_op_counts
            .iter()
            .any(|(op, n)| op == "snk" && *n > 0));
        // Metric continuity: the revived PE's nTuplesProcessed carries on
        // from the checkpoint instead of resetting to zero.
        run(&mut k, 25);
        let processed = k.op_metric(job, "snk", "nTuplesProcessed").unwrap();
        assert!(processed as usize >= before, "{processed} < {before}");
        assert_eq!(k.ckpt.restored(), 1);
    }

    #[test]
    fn restart_without_checkpoint_or_policy_is_fresh() {
        // Policy off: even after a long run there is nothing to restore.
        let mut k = kernel(2);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10);
        assert_eq!(k.ckpt.saved(), 0);
        let pe = k.pe_id_of(job, 2).unwrap();
        k.kill_pe(pe).unwrap();
        k.restart_pe(pe).unwrap();
        assert_eq!(
            k.restart_log().last().unwrap().restore,
            RestoreOutcome::Fresh {
                reason: FreshReason::Disabled
            }
        );

        // Policy on but the kill lands before the first snapshot round.
        let mut k = ckpt_kernel(2, 1_000_000);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 3);
        let pe = k.pe_id_of(job, 2).unwrap();
        k.kill_pe(pe).unwrap();
        k.restart_pe(pe).unwrap();
        assert_eq!(
            k.restart_log().last().unwrap().restore,
            RestoreOutcome::Fresh {
                reason: FreshReason::NoCheckpoint
            }
        );
        assert_eq!(k.ckpt.fallbacks(), 1);
    }

    #[test]
    fn non_checkpointable_operator_opts_its_pe_out() {
        let mut k = ckpt_kernel(1, 2);
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", 20.0)
                .not_checkpointable(),
        );
        let model = AppModelBuilder::new("N").build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        let job = k.submit_job(adl, None).unwrap();
        run(&mut k, 10);
        assert!(!k.pe_checkpointable(job, 0));
        assert!(k.ckpt.latest(job, 0).is_none());
        let pe = k.pe_id_of(job, 0).unwrap();
        k.kill_pe(pe).unwrap();
        k.restart_pe(pe).unwrap();
        assert_eq!(
            k.restart_log().last().unwrap().restore,
            RestoreOutcome::Fresh {
                reason: FreshReason::NotCheckpointable
            }
        );
    }

    #[test]
    fn lossy_restore_fails_self_verification() {
        let mut k = Kernel::new(
            Cluster::with_hosts(2),
            OperatorRegistry::with_builtins(),
            RuntimeConfig {
                checkpoint: crate::ckpt::CheckpointPolicy::every(5).lossy(true),
                ..RuntimeConfig::default()
            },
        );
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10);
        let pe = k.pe_id_of(job, 2).unwrap();
        let before = k.tap(job, "snk").unwrap().len();
        assert!(before > 0);
        k.kill_pe(pe).unwrap();
        k.restart_pe(pe).unwrap();
        match &k.restart_log().last().unwrap().restore {
            RestoreOutcome::Restored { verified, .. } => {
                assert!(!verified, "dropping a blob must trip verification")
            }
            other => panic!("expected lossy restored outcome, got {other:?}"),
        }
        // The sink (last stateful op of the PE) indeed lost its contents.
        assert_eq!(k.tap(job, "snk").unwrap().len(), 0);
    }

    #[test]
    fn cancel_job_drops_checkpoints() {
        let mut k = ckpt_kernel(2, 2);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 6);
        assert!(!k.ckpt.is_empty());
        assert!(k.ckpt.state_bytes() > 0);
        k.cancel_job(job).unwrap();
        assert_eq!(k.ckpt.len(), 0);
    }

    fn storage_kernel(hosts: usize, policy: crate::ckpt::CheckpointPolicy) -> Kernel {
        Kernel::new(
            Cluster::with_hosts(hosts),
            OperatorRegistry::with_builtins(),
            RuntimeConfig {
                checkpoint: policy,
                ..RuntimeConfig::default()
            },
        )
    }

    /// With write latency, a snapshot issued at the boundary is invisible
    /// (unrestorable, untrimmed) until its commit time passes — the
    /// in-flight window the async store exists to model.
    #[test]
    fn write_latency_defers_commit_and_trim() {
        let mut k = storage_kernel(
            2,
            crate::ckpt::CheckpointPolicy::every(5)
                .upstream_backup(true)
                .storage(crate::ckpt::StorageModel::default().with_write(250, 0)),
        );
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 5); // t = 500 ms: snapshots issued, commit at 750 ms
        assert!(k.ckpt.issued() > 0);
        assert_eq!(k.ckpt.saved(), 0, "nothing durable yet");
        assert!(k.ckpt.write_in_flight(job, 2));
        assert!(k.ckpt.latest(job, 2).is_none());
        assert!(k.backup.buffered_now() > 0);
        assert_eq!(
            k.backup.stats().trimmed,
            0,
            "an uncommitted snapshot must not trim the backup buffers"
        );
        run(&mut k, 3); // t = 800 ms >= commit time
        assert!(k.ckpt.saved() > 0);
        assert!(!k.ckpt.has_pending());
        assert!(k.ckpt.latest(job, 2).is_some());
        assert!(
            k.backup.stats().trimmed > 0,
            "the durable commit acks the covered deliveries"
        );
    }

    /// A restore reads the chain back through the storage model: the paid
    /// latency lands in the restart record and delays promotion.
    #[test]
    fn restore_latency_delays_promotion() {
        let mut k = storage_kernel(
            2,
            crate::ckpt::CheckpointPolicy::every(5)
                .storage(crate::ckpt::StorageModel::default().with_restore(300, 0)),
        );
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10); // t = 1 s, two snapshot rounds committed
        let pe = k.pe_id_of(job, 2).unwrap();
        k.kill_pe(pe).unwrap();
        let new_pe = k.restart_pe(pe).unwrap();
        let rec = k.restart_log().last().unwrap().clone();
        assert!(rec.restore.restored());
        assert_eq!(rec.restore_ms, 300);
        // restart_delay (2 s = 20 quanta) alone is no longer enough…
        run(&mut k, 22); // t = 3.2 s < 1 s + 2 s + 300 ms
        assert_eq!(
            k.cluster.process(new_pe).unwrap().status,
            PeStatus::Starting
        );
        // …the storage read must finish first.
        run(&mut k, 1); // t = 3.3 s
        assert_eq!(k.cluster.process(new_pe).unwrap().status, PeStatus::Up);
    }

    /// Budget pressure never touches the chains of `Up` PEs, but a crashed
    /// PE's slot is fair game — and its restart then reports `Evicted`.
    #[test]
    fn budget_eviction_reclaims_crashed_slot_and_reports_evicted() {
        let mut k = storage_kernel(
            2,
            crate::ckpt::CheckpointPolicy::every(2)
                .storage(crate::ckpt::StorageModel::default().with_budget(1)),
        );
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10);
        // Hopelessly over budget, yet nothing was evicted: every slot
        // belongs to an Up PE and is protected.
        assert!(k.ckpt.state_bytes() > 1);
        assert_eq!(k.ckpt.evictions(), 0);
        let pe = k.pe_id_of(job, 2).unwrap();
        k.kill_pe(pe).unwrap();
        run(&mut k, 2); // next boundary: the dead slot is now evictable
        assert!(k.ckpt.was_evicted(job, 2));
        assert!(k.ckpt.latest(job, 2).is_none());
        assert!(k.ckpt.latest(job, 0).is_some(), "live slots survive");
        k.restart_pe(pe).unwrap();
        let rec = k.restart_log().last().unwrap().clone();
        assert_eq!(
            rec.restore,
            RestoreOutcome::Fresh {
                reason: FreshReason::Evicted
            }
        );
        assert_eq!(rec.restore_ms, 0);
    }

    /// Satellite regression for the `delivered_at <= taken_at` trim
    /// boundary, end to end: deliveries landing on the snapshot instant are
    /// captured inside the v2 queue snapshot *and* acked by the commit, so
    /// a crash-restart around that boundary neither loses nor duplicates
    /// them — the faulted run converges to the fault-free twin exactly.
    #[test]
    fn snapshot_instant_delivery_is_neither_lost_nor_duplicated() {
        let policy = crate::ckpt::CheckpointPolicy::every(5).upstream_backup(true);
        let mut k = storage_kernel(2, policy);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10); // kill lands exactly on a snapshot boundary
        let cov = k.checkpoint_coverage(job, 2).unwrap();
        assert_eq!(cov, SimTime::from_millis(1000));
        // Every buffered entry at or before the snapshot instant was
        // trimmed by the commit — none survive to be replayed on top of
        // the restored queues.
        assert!(k
            .backup
            .replay_entries((job, 2))
            .iter()
            .all(|e| e.delivered_at > cov));
        let pe = k.pe_id_of(job, 2).unwrap();
        k.kill_pe(pe).unwrap();
        k.restart_pe(pe).unwrap();
        run(&mut k, 40);

        let mut twin = storage_kernel(2, policy);
        let twin_job = twin.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut twin, 50);
        let seqs = |k: &Kernel, j: JobId| {
            k.tap(j, "snk")
                .unwrap()
                .iter()
                .map(|t| t.get_int("seq").unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(seqs(&k, job), seqs(&twin, twin_job));
    }

    /// Regression (SRM hygiene): every path that retires or crashes a PE
    /// must drop its per-PE metric snapshot. Previously only `restart_pe`
    /// forgot metrics, so a `kill_host` cascade left stale snapshots behind.
    #[test]
    fn crashed_and_retired_pes_drop_srm_snapshots() {
        let mut k = kernel(2);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 30); // past the 3 s metric push
        let full = k.srm.query_jobs(&[job])[&job].values.len();
        assert!(full > 0);

        // kill_pe drops exactly that PE's rows.
        let sink_pe = k.pe_id_of(job, 2).unwrap();
        k.kill_pe(sink_pe).unwrap();
        let after_kill = k.srm.query_jobs(&[job])[&job].values.len();
        assert!(after_kill < full, "{after_kill} vs {full}");
        assert!(!k.srm.query_jobs(&[job])[&job]
            .values
            .iter()
            .any(|(key, _)| key.operator_name() == Some("snk")));

        // kill_host cascades drop every victim's rows.
        let pe0 = k.pe_id_of(job, 0).unwrap();
        let host0 = k.cluster.host_of_pe(pe0).unwrap().to_string();
        k.kill_host(&host0).unwrap();
        let snap = k.srm.query_jobs(&[job]);
        let remaining = snap.get(&job).map(|s| s.values.len()).unwrap_or(0);
        assert!(remaining < after_kill, "{remaining} vs {after_kill}");

        // cancel_job wipes the rest.
        k.cancel_job(job).unwrap();
        assert!(k.srm.query_jobs(&[job]).is_empty());
    }

    /// A SAM/HC partition that outlives the liveness deadline: SAM declares
    /// the (actually healthy) hosts dead, crashes their PEs with
    /// `HostFailure`, and counts the false declarations. Generated plans
    /// bound partitions below the deadline, so this path is reached only by
    /// deliberately over-long partitions like this one.
    #[test]
    fn over_deadline_partition_falsely_declares_hosts() {
        let mut k = kernel(2);
        let orca = k.sam.register_orchestrator();
        let job = k.submit_job(pipeline_adl("P", 10.0), Some(orca)).unwrap();
        run(&mut k, 5);
        // Partition for 7 s > the 6 s default deadline.
        k.partition_sam_hc(SimDuration::from_secs(7));
        run(&mut k, 61); // past the deadline, partition still open
        let stats = k.control_stats();
        assert_eq!(stats.hc_partitions, 1);
        assert_eq!(stats.false_declarations, 2, "both hosts declared");
        // The hosts themselves are still up — only their PEs were crashed.
        assert!(k.cluster.hosts().all(|h| h.up));
        for idx in 0..3 {
            let pe = k.pe_id_of(job, idx).unwrap();
            assert_eq!(k.pe_status(pe), Some(PeStatus::Crashed));
        }
        // Every crash was pushed to the owner as a HostFailure.
        let notes = k.sam.drain_notifications(orca);
        assert_eq!(notes.len(), 3);
        assert!(notes.iter().all(|n| matches!(
            n,
            OrcaNotification::PeFailure {
                reason: CrashReason::HostFailure,
                ..
            }
        )));
        // The partition heals and fresh heartbeats resume: no re-declaration.
        run(&mut k, 20);
        assert_eq!(k.control_stats().false_declarations, 2);
    }

    /// A partition bounded below the deadline declares nobody dead — the
    /// property generated `ps:` faults rely on.
    #[test]
    fn under_deadline_partition_is_harmless() {
        let mut k = kernel(2);
        let job = k.submit_job(pipeline_adl("P", 10.0), None).unwrap();
        run(&mut k, 5);
        k.partition_sam_hc(SimDuration::from_secs(4));
        run(&mut k, 100);
        assert_eq!(k.control_stats().false_declarations, 0);
        let pe = k.pe_id_of(job, 0).unwrap();
        assert_eq!(k.pe_status(pe), Some(PeStatus::Up));
    }

    /// ORCA crash window: notifications pushed while the service is down
    /// stay durably queued, and recovery reports the backlog it replays.
    #[test]
    fn orca_crash_window_preserves_backlog() {
        let mut k = kernel(2);
        let orca = k.sam.register_orchestrator();
        let job = k.submit_job(pipeline_adl("P", 10.0), Some(orca)).unwrap();
        assert!(!k.crash_orchestrator(OrcaId(99)), "unknown orca refused");
        assert!(k.crash_orchestrator(orca));
        assert!(k.orca_is_down(orca));
        let pe = k.pe_id_of(job, 0).unwrap();
        k.kill_pe(pe).unwrap();
        assert_eq!(k.sam.notifications_pending(orca), 1);
        run(&mut k, 21); // past the 2 s control restart delay
        assert!(!k.orca_is_down(orca));
        let stats = k.control_stats();
        assert_eq!(stats.orca_crashes, 1);
        assert_eq!(stats.orca_recoveries, 1);
        assert_eq!(stats.notifications_replayed, 1);
        assert_eq!(k.sam.drain_notifications(orca).len(), 1);
    }

    /// SAM restart on the replicated metastore: drains go unavailable for
    /// the window, recovery replays the op log (digest-verified inside the
    /// store), and notification conservation holds throughout.
    #[test]
    fn sam_restart_replays_the_metastore_log() {
        let mut k = Kernel::new(
            Cluster::with_hosts(2),
            OperatorRegistry::with_builtins(),
            RuntimeConfig {
                metastore: MetastoreKind::Replicated,
                ..RuntimeConfig::default()
            },
        );
        let orca = k.sam.register_orchestrator();
        let job = k.submit_job(pipeline_adl("P", 10.0), Some(orca)).unwrap();
        run(&mut k, 5);
        let pe = k.pe_id_of(job, 0).unwrap();
        k.kill_pe(pe).unwrap();
        assert!(k.restart_sam());
        assert!(!k.restart_sam(), "window already open");
        assert!(!k.sam.is_available());
        assert!(k.sam.drain_notifications(orca).is_empty(), "unavailable");
        run(&mut k, 21);
        assert!(k.sam.is_available());
        let stats = k.control_stats();
        assert_eq!(stats.sam_restarts, 1);
        assert!(stats.meta_ops_replayed > 0);
        // Nothing pushed was lost or double-drained.
        let pending = k.sam.notifications_pending(orca) as u64;
        assert_eq!(
            k.sam.notifications_pushed(orca),
            k.sam.notifications_drained(orca) + pending
        );
        assert_eq!(k.sam.drain_notifications(orca).len(), pending as usize);
        assert!(k.sam.metastore_verify());
    }

    /// The replicated store is a pure drop-in: a fault-free run produces a
    /// bit-identical trace digest under either store kind.
    #[test]
    fn fault_free_trace_digest_identical_across_stores() {
        let drive = |kind: MetastoreKind| {
            let mut k = Kernel::new(
                Cluster::with_hosts(2),
                OperatorRegistry::with_builtins(),
                RuntimeConfig {
                    metastore: kind,
                    checkpoint: crate::ckpt::CheckpointPolicy::every(5),
                    ..RuntimeConfig::default()
                },
            );
            let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
            run(&mut k, 30);
            let pe = k.pe_id_of(job, 2).unwrap();
            k.kill_pe(pe).unwrap();
            k.restart_pe(pe).unwrap();
            run(&mut k, 30);
            k.trace.digest()
        };
        assert_eq!(
            drive(MetastoreKind::Memory),
            drive(MetastoreKind::Replicated)
        );
    }

    /// Durable checkpoint commits land in the metastore's index and survive
    /// a SAM restart.
    #[test]
    fn ckpt_commits_recorded_in_metastore() {
        let mut k = Kernel::new(
            Cluster::with_hosts(2),
            OperatorRegistry::with_builtins(),
            RuntimeConfig {
                metastore: MetastoreKind::Replicated,
                checkpoint: crate::ckpt::CheckpointPolicy::every(5),
                ..RuntimeConfig::default()
            },
        );
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 10);
        let indexed = k.sam.ckpt_commit(job, 2);
        assert!(indexed.is_some());
        assert_eq!(indexed, k.checkpoint_coverage(job, 2));
        k.restart_sam();
        run(&mut k, 21);
        // Later commits keep advancing the index; the restart lost nothing
        // and the recovered index still agrees with the authoritative store.
        let after = k.sam.ckpt_commit(job, 2);
        assert!(after >= indexed, "index survives restart: {after:?}");
        assert_eq!(after, k.checkpoint_coverage(job, 2));
        k.cancel_job(job).unwrap();
        assert_eq!(k.sam.ckpt_commit(job, 2), None);
    }

    #[test]
    fn stopped_pe_does_not_run() {
        let mut k = kernel(1);
        let job = k.submit_job(pipeline_adl("P", 50.0), None).unwrap();
        run(&mut k, 5);
        let count1 = k.tap(job, "snk").unwrap().len();
        let sink_pe = k.pe_id_of(job, 2).unwrap();
        k.stop_pe(sink_pe).unwrap();
        run(&mut k, 5);
        let count2 = k.tap(job, "snk").unwrap().len();
        assert_eq!(count1, count2);
        // Restart brings it back (fresh) after the spawn delay.
        let new_pe = k.restart_pe(sink_pe).unwrap();
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Starting));
        run(&mut k, 21);
        assert_eq!(k.pe_status(new_pe), Some(PeStatus::Up));
    }
}
