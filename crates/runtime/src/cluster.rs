//! The simulated cluster: hosts, host controllers, and PE processes.
//!
//! Each host runs a Host Controller (HC, §2.2) — a local daemon that starts
//! and stops PE processes on behalf of SAM, tracks their status, and
//! periodically snapshots their metrics for SRM.

use crate::ids::{JobId, PeId};
use sps_engine::PeRuntime;
use sps_sim::SimTime;
use std::collections::BTreeMap;

/// Lifecycle state of a PE process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeStatus {
    /// Spawning: the process exists but has not finished starting (restart
    /// latency); it executes nothing and loses arriving input.
    Starting,
    Up,
    Crashed,
    Stopped,
}

/// One operating-system process hosting a PE.
pub struct PeProcess {
    pub pe_id: PeId,
    pub job: JobId,
    /// Index of this PE within its job's ADL.
    pub adl_index: usize,
    pub status: PeStatus,
    pub started_at: SimTime,
    /// When a `Starting` process becomes `Up`.
    pub up_at: SimTime,
    /// The engine container. Rebuilt on restart; operator state (windows!)
    /// survives only when the kernel's checkpoint policy is enabled and a
    /// compatible snapshot exists — otherwise the replacement starts fresh,
    /// which is the premise of §5.2.
    pub runtime: PeRuntime,
}

/// A cluster host with its controller state.
pub struct Host {
    pub name: String,
    pub tags: Vec<String>,
    pub up: bool,
    /// Local PE processes, keyed by PE id (the HC's process table).
    pub processes: BTreeMap<PeId, PeProcess>,
}

impl Host {
    pub fn new(name: &str, tags: &[&str]) -> Self {
        Host {
            name: name.to_string(),
            tags: tags.iter().map(|t| t.to_string()).collect(),
            up: true,
            processes: BTreeMap::new(),
        }
    }

    /// Number of live PE processes (load-balance metric; spawning processes
    /// count, since they are about to consume capacity).
    pub fn live_processes(&self) -> usize {
        self.processes
            .values()
            .filter(|p| matches!(p.status, PeStatus::Up | PeStatus::Starting))
            .count()
    }

    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

/// The set of hosts available to the runtime.
pub struct Cluster {
    hosts: BTreeMap<String, Host>,
}

impl Cluster {
    pub fn new() -> Self {
        Cluster {
            hosts: BTreeMap::new(),
        }
    }

    /// Convenience: a cluster of `n` identical hosts named `host0..`.
    pub fn with_hosts(n: usize) -> Self {
        let mut c = Cluster::new();
        for i in 0..n {
            c.add_host(Host::new(&format!("host{i}"), &[]));
        }
        c
    }

    pub fn add_host(&mut self, host: Host) {
        self.hosts.insert(host.name.clone(), host);
    }

    pub fn host(&self, name: &str) -> Option<&Host> {
        self.hosts.get(name)
    }

    pub fn host_mut(&mut self, name: &str) -> Option<&mut Host> {
        self.hosts.get_mut(name)
    }

    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.values()
    }

    pub fn hosts_mut(&mut self) -> impl Iterator<Item = &mut Host> {
        self.hosts.values_mut()
    }

    pub fn host_names(&self) -> Vec<&str> {
        self.hosts.keys().map(String::as_str).collect()
    }

    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Locates the host running a given PE.
    pub fn host_of_pe(&self, pe: PeId) -> Option<&str> {
        self.hosts
            .values()
            .find(|h| h.processes.contains_key(&pe))
            .map(|h| h.name.as_str())
    }

    /// Mutable access to a process wherever it lives.
    pub fn process_mut(&mut self, pe: PeId) -> Option<&mut PeProcess> {
        self.hosts
            .values_mut()
            .find_map(|h| h.processes.get_mut(&pe))
    }

    pub fn process(&self, pe: PeId) -> Option<&PeProcess> {
        self.hosts.values().find_map(|h| h.processes.get(&pe))
    }

    /// Removes a process (job cancellation).
    pub fn remove_process(&mut self, pe: PeId) -> Option<PeProcess> {
        for h in self.hosts.values_mut() {
            if let Some(p) = h.processes.remove(&pe) {
                return Some(p);
            }
        }
        None
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_engine::OperatorRegistry;
    use sps_model::adl::{Adl, AdlPe};
    use sps_sim::SimRng;

    fn empty_adl() -> Adl {
        Adl {
            app_name: "A".into(),
            operators: vec![],
            pes: vec![AdlPe {
                index: 0,
                operators: vec![],
                host_pool: None,
                host_exlocate: None,
            }],
            streams: vec![],
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        }
    }

    fn proc(pe: u64) -> PeProcess {
        PeProcess {
            pe_id: PeId(pe),
            job: JobId(1),
            adl_index: 0,
            status: PeStatus::Up,
            started_at: SimTime::ZERO,
            up_at: SimTime::ZERO,
            runtime: PeRuntime::build(
                &empty_adl(),
                0,
                &OperatorRegistry::with_builtins(),
                SimRng::new(1),
            )
            .unwrap(),
        }
    }

    #[test]
    fn with_hosts_names_sequentially() {
        let c = Cluster::with_hosts(3);
        assert_eq!(c.num_hosts(), 3);
        assert_eq!(c.host_names(), vec!["host0", "host1", "host2"]);
        assert!(c.host("host1").unwrap().up);
    }

    #[test]
    fn tags_and_load() {
        let mut h = Host::new("h", &["gpu", "fast"]);
        assert!(h.has_tag("gpu"));
        assert!(!h.has_tag("slow"));
        assert_eq!(h.live_processes(), 0);
        h.processes.insert(PeId(1), proc(1));
        assert_eq!(h.live_processes(), 1);
        h.processes.get_mut(&PeId(1)).unwrap().status = PeStatus::Crashed;
        assert_eq!(h.live_processes(), 0);
    }

    #[test]
    fn process_location_and_removal() {
        let mut c = Cluster::with_hosts(2);
        c.host_mut("host1")
            .unwrap()
            .processes
            .insert(PeId(7), proc(7));
        assert_eq!(c.host_of_pe(PeId(7)), Some("host1"));
        assert_eq!(c.host_of_pe(PeId(9)), None);
        assert!(c.process(PeId(7)).is_some());
        assert!(c.process_mut(PeId(7)).is_some());
        let removed = c.remove_process(PeId(7)).unwrap();
        assert_eq!(removed.pe_id, PeId(7));
        assert!(c.process(PeId(7)).is_none());
        assert!(c.remove_process(PeId(7)).is_none());
    }
}
