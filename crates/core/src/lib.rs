//! **ORCA** — user-defined runtime adaptation routines for stream processing
//! applications.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Jacques-Silva et al., *Building User-defined Runtime Adaptation Routines
//! for Stream Processing Applications*, VLDB 2012): a framework that
//! separates an application's **control logic** from its **data-processing
//! logic** by running the control code in a dedicated *orchestrator*.
//!
//! An orchestrator has two halves:
//!
//! - the **ORCA logic** — your code: a type implementing [`Orchestrator`]
//!   that registers *event scopes* and reacts to delivered events using the
//!   actuation and inspection APIs of [`OrcaCtx`];
//! - the **ORCA service** — [`service::OrcaService`]: the runtime component
//!   that maintains an in-memory stream-graph representation of every
//!   managed application, pulls metrics from SRM on a configurable period,
//!   receives failure notifications from SAM, filters everything through the
//!   registered scopes, and delivers events one at a time with rich context
//!   (including *epoch* logical clocks).
//!
//! Application sets with dependency relations, automatic ordered submission,
//! starvation-safe cancellation, and garbage collection (§4.4 of the paper)
//! live in [`deps`]. The recursive-SQL baseline the paper compares its scope
//! API against (§4.1) is implemented in [`sqlbase`] and checked equivalent by
//! property tests.
//!
//! # Example: a self-healing orchestrator
//!
//! ```
//! use orca::*;
//! use sps_model::compiler::{compile, CompileOptions};
//! use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
//! use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
//! use sps_sim::SimDuration;
//!
//! // ORCA logic: restart any crashed PE of the managed application.
//! struct SelfHeal;
//!
//! impl Orchestrator for SelfHeal {
//!     fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
//!         ctx.register_event_scope(PeFailureScope::new("failures"));
//!         ctx.submit_app("Demo").unwrap();
//!     }
//!     fn on_pe_failure(&mut self, ctx: &mut OrcaCtx<'_>, e: &PeFailureContext,
//!                      _scopes: &[String]) {
//!         ctx.restart_pe(e.pe).unwrap();
//!     }
//! }
//!
//! // A tiny application: source → sink.
//! let mut m = CompositeGraphBuilder::main();
//! m.operator("src", OperatorInvocation::new("Beacon").source().param("rate", 10.0));
//! m.operator("snk", OperatorInvocation::new("Sink").sink());
//! m.pipe("src", "snk");
//! let model = AppModelBuilder::new("Demo").build(m.build().unwrap()).unwrap();
//! let adl = compile(&model, CompileOptions::default()).unwrap();
//!
//! // Assemble the simulated world and attach the orchestrator.
//! let kernel = Kernel::new(
//!     Cluster::with_hosts(2),
//!     sps_engine::OperatorRegistry::with_builtins(),
//!     RuntimeConfig::default(),
//! );
//! let mut world = World::new(kernel);
//! let service = OrcaService::submit(
//!     &mut world.kernel,
//!     OrcaDescriptor::new("SelfHealOrca").app(adl),
//!     Box::new(SelfHeal),
//! );
//! world.add_controller(Box::new(service));
//!
//! // Run, crash a PE, and watch the orchestrator heal it.
//! world.run_for(SimDuration::from_secs(1));
//! let job = world.kernel.sam.running_jobs()[0];
//! let pe = world.kernel.pe_id_of(job, 0).unwrap();
//! world.kernel.kill_pe(pe).unwrap();
//! world.run_for(SimDuration::from_secs(5));
//!
//! let healed = world.kernel.pe_id_of(job, 0).unwrap();
//! assert_ne!(healed, pe);
//! assert_eq!(world.kernel.pe_status(healed), Some(sps_runtime::PeStatus::Up));
//! ```

pub mod deps;
pub mod error;
pub mod event;
pub mod orchestrator;
pub mod rules;
pub mod scope;
pub mod service;
pub mod sqlbase;

pub use deps::{AppConfig, DependencyManager};
pub use error::OrcaError;
pub use event::{
    JobEventContext, OperatorMetricContext, OperatorPortMetricContext, OrcaStartContext,
    PeFailureContext, PeMetricContext, TimerContext, UserEventContext,
};
pub use orchestrator::Orchestrator;
pub use rules::{Condition, FailureRule, MetricRule, RuleAction, RulePolicy};
pub use scope::{
    EventScope, JobEventScope, OperatorMetricScope, OperatorPortMetricScope, PeFailureScope,
    PeMetricScope, UserEventScope,
};
pub use service::{JournalEntry, ManagedApp, OrcaCtx, OrcaDescriptor, OrcaService};
