//! The `Orchestrator` trait — the ORCA logic's surface (§3).
//!
//! Developers write the ORCA logic by implementing this trait (the paper's
//! C++ `Orchestrator` class with specializable event-handling methods). Only
//! [`Orchestrator::on_start`] is mandatory: it is the single event that is
//! always in scope, and the natural place to register event scopes,
//! configure applications and dependencies, and kick off submissions. Every
//! other handler defaults to a no-op and fires only for events matching a
//! registered subscope.

use crate::event::{
    JobEventContext, OperatorMetricContext, OperatorPortMetricContext, OrcaStartContext,
    PeFailureContext, PeMetricContext, TimerContext, UserEventContext,
};
use crate::service::OrcaCtx;
use std::any::Any;

/// User-written adaptation logic. `scopes` arguments carry the keys of every
/// registered subscope the event matched (§4.2: events are delivered once,
/// with all matching subscope keys).
pub trait Orchestrator: Any {
    /// Orchestrator start callback — always delivered, first.
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, start: &OrcaStartContext);

    /// An operator metric observation matched an [`crate::OperatorMetricScope`].
    fn on_operator_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        event: &OperatorMetricContext,
        scopes: &[String],
    ) {
        let _ = (ctx, event, scopes);
    }

    /// An operator-port metric observation matched a scope.
    fn on_operator_port_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        event: &OperatorPortMetricContext,
        scopes: &[String],
    ) {
        let _ = (ctx, event, scopes);
    }

    /// A PE metric observation matched a scope.
    fn on_pe_metric(&mut self, ctx: &mut OrcaCtx<'_>, event: &PeMetricContext, scopes: &[String]) {
        let _ = (ctx, event, scopes);
    }

    /// A PE of a managed job crashed (delivered immediately, §4.2).
    fn on_pe_failure(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        event: &PeFailureContext,
        scopes: &[String],
    ) {
        let _ = (ctx, event, scopes);
    }

    /// The ORCA service submitted a job (direct or dependency-driven).
    fn on_job_submitted(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        event: &JobEventContext,
        scopes: &[String],
    ) {
        let _ = (ctx, event, scopes);
    }

    /// The ORCA service cancelled a job (explicit or garbage-collected).
    fn on_job_cancelled(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        event: &JobEventContext,
        scopes: &[String],
    ) {
        let _ = (ctx, event, scopes);
    }

    /// A timer registered via [`OrcaCtx::set_timer`] expired.
    fn on_timer(&mut self, ctx: &mut OrcaCtx<'_>, event: &TimerContext) {
        let _ = (ctx, event);
    }

    /// A user-generated event (command tool) matched a scope.
    fn on_user_event(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        event: &UserEventContext,
        scopes: &[String],
    ) {
        let _ = (ctx, event, scopes);
    }
}
