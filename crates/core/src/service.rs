//! The ORCA service: event detection, scope filtering, one-at-a-time
//! delivery, graph inspection, and actuation (§3, §4).
//!
//! The service runs as a [`Controller`] of the simulated runtime world
//! (standing in for the separate orchestrator process SAM forks in System
//! S). Each quantum it:
//!
//! 1. delivers the start callback (first quantum only),
//! 2. converts SAM failure notifications into PE-failure events,
//! 3. converts injected user events,
//! 4. fires due timers,
//! 5. advances the dependency manager (ordered submissions / GC
//!    cancellations),
//! 6. polls SRM for metrics when the poll period elapsed (default 15 s,
//!    changeable at runtime — §4.2),
//! 7. drains the event queue, dispatching to the ORCA logic one event at a
//!    time.

use crate::deps::{AppConfig, DependencyManager};
use crate::error::OrcaError;
use crate::event::*;
use crate::orchestrator::Orchestrator;
use crate::scope::EventScope;
use sps_engine::{MetricKey, StreamItem, Tuple};
use sps_model::adl::Adl;
use sps_model::value::ParamMap;
use sps_model::{GraphStore, Value};
use sps_runtime::{Controller, JobId, Kernel, OrcaId, OrcaNotification, PeId, RuntimeError};
use sps_sim::{SimDuration, SimTime};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Safety cap on events dispatched per quantum (guards against handler ↔
/// event feedback loops).
const MAX_EVENTS_PER_QUANTUM: usize = 10_000;

/// Journal retention (most recent entries kept).
const JOURNAL_CAP: usize = 100_000;

/// Human-readable one-liner for a queued event (journal rendering).
fn describe_event(event: &QueuedEvent) -> String {
    match event {
        QueuedEvent::OperatorMetric(c, _) => format!(
            "operatorMetric {}@{} {}={} epoch={}",
            c.instance_name, c.app_name, c.metric, c.value, c.epoch
        ),
        QueuedEvent::OperatorPortMetric(c, _) => format!(
            "portMetric {}:{}@{} {}={}",
            c.instance_name, c.port, c.app_name, c.metric, c.value
        ),
        QueuedEvent::PeMetric(c, _) => {
            format!("peMetric {}@{} {}={}", c.pe, c.app_name, c.metric, c.value)
        }
        QueuedEvent::PeFailure(c, _) => format!(
            "peFailure {}@{} reason={} epoch={}",
            c.pe,
            c.app_name,
            c.reason.class(),
            c.epoch
        ),
        QueuedEvent::JobSubmitted(c, _) => format!("jobSubmitted {} ({})", c.job, c.app_name),
        QueuedEvent::JobCancelled(c, _) => format!("jobCancelled {} ({})", c.job, c.app_name),
        QueuedEvent::Timer(c) => format!("timer {}", c.key),
        QueuedEvent::User(c, _) => format!("userEvent {}", c.name),
    }
}

/// The orchestrator description submitted to SAM (the paper's `MyORCA.xml`):
/// a name plus the applications the orchestrator may manage, each with its
/// compiled ADL.
#[derive(Clone, Debug)]
pub struct OrcaDescriptor {
    pub name: String,
    pub apps: Vec<(String, Adl)>,
}

impl OrcaDescriptor {
    pub fn new(name: &str) -> Self {
        OrcaDescriptor {
            name: name.to_string(),
            apps: Vec::new(),
        }
    }

    /// Registers an application under its ADL's application name.
    pub fn app(mut self, adl: Adl) -> Self {
        self.apps.push((adl.app_name.clone(), adl));
        self
    }
}

/// A managed application: its ADL and the in-memory stream-graph
/// representation built from it (§3).
#[derive(Clone, Debug)]
pub struct ManagedApp {
    pub name: String,
    pub adl: Adl,
    pub graph: GraphStore,
}

/// Record of a job the service started.
#[derive(Clone, Debug)]
struct JobRecord {
    app_name: String,
    config_id: Option<String>,
}

/// Delivery/bookkeeping counters (observability + benches).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    pub events_delivered: u64,
    pub metric_observations_seen: u64,
    pub metric_events_matched: u64,
    pub polls: u64,
    pub failures_seen: u64,
}

/// One entry of the event/actuation journal (paper §7 future work:
/// "adding transaction IDs to delivered events, and associating actuations
/// taking place via the ORCA service to the event transaction ID", enabling
/// reliable delivery and actuation replay).
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Transaction id: one per delivered event, monotonically increasing.
    pub txn: u64,
    pub at: SimTime,
    /// Event summary (type + identifying fields).
    pub event: String,
    /// Actuations the handler performed under this transaction.
    pub actuations: Vec<String>,
}

/// Internal state shared between the service loop and handler contexts.
pub(crate) struct ServiceCore {
    orca_id: OrcaId,
    name: String,
    apps: BTreeMap<String, ManagedApp>,
    scopes: Vec<EventScope>,
    queue: VecDeque<QueuedEvent>,
    deps: DependencyManager,
    jobs: BTreeMap<JobId, JobRecord>,
    poll_period: SimDuration,
    last_poll: Option<SimTime>,
    metric_epoch: u64,
    failure_epochs: BTreeMap<(String, u64), u64>,
    next_failure_epoch: u64,
    timers: Vec<(SimTime, String)>,
    pending_user_events: VecDeque<(String, ParamMap)>,
    status: BTreeMap<String, String>,
    exclusive_uniquifier: u64,
    stats: ServiceStats,
    next_txn: u64,
    current_txn: Option<u64>,
    journal: Vec<JournalEntry>,
}

impl ServiceCore {
    /// Enqueues a job lifecycle event if any JobEvent scope matches.
    fn enqueue_job_event(&mut self, submitted: bool, ctx: JobEventContext) {
        let keys: Vec<String> = self
            .scopes
            .iter()
            .filter_map(|s| match s {
                EventScope::JobEvent(js) if js.matches(&ctx.app_name, ctx.config_id.as_deref()) => {
                    Some(js.key.clone())
                }
                _ => None,
            })
            .collect();
        if keys.is_empty() {
            return;
        }
        self.queue.push_back(if submitted {
            QueuedEvent::JobSubmitted(ctx, keys)
        } else {
            QueuedEvent::JobCancelled(ctx, keys)
        });
    }

    /// Epoch for a PE failure: failures sharing (reason class, detection
    /// time) correlate to one physical event (§4.2).
    fn failure_epoch(&mut self, class: &str, detected_at: SimTime) -> u64 {
        let key = (class.to_string(), detected_at.as_millis());
        if let Some(&e) = self.failure_epochs.get(&key) {
            return e;
        }
        self.next_failure_epoch += 1;
        let e = self.next_failure_epoch;
        self.failure_epochs.insert(key, e);
        e
    }

    /// ADL ready for submission for a config: parameter substitution plus
    /// the exclusive-host-pool rewrite.
    fn prepare_adl(
        &mut self,
        app_name: &str,
        config: Option<&AppConfig>,
    ) -> Result<Adl, OrcaError> {
        let app = self
            .apps
            .get(app_name)
            .ok_or_else(|| OrcaError::UnknownApp(app_name.to_string()))?;
        let mut adl = app.adl.clone();
        if let Some(cfg) = config {
            for op in &mut adl.operators {
                for value in op.params.values_mut() {
                    if let Value::Str(s) = value {
                        if let Some(key) = s.strip_prefix("${").and_then(|r| r.strip_suffix('}')) {
                            let replacement = cfg.params.get(key).cloned().ok_or_else(|| {
                                OrcaError::MissingParam {
                                    config: cfg.id.clone(),
                                    param: key.to_string(),
                                }
                            })?;
                            *value = replacement;
                        }
                    }
                }
            }
            if cfg.exclusive_hosts {
                self.exclusive_uniquifier += 1;
                let tag = format!("{}#{}", cfg.id, self.exclusive_uniquifier);
                adl.make_host_pools_exclusive(&tag);
            }
        }
        Ok(adl)
    }

    fn require_managed(&self, job: JobId) -> Result<&JobRecord, OrcaError> {
        self.jobs.get(&job).ok_or(OrcaError::NotManaged(job))
    }

    /// Associates an actuation description with the transaction of the
    /// event being handled (no-op outside event handling).
    fn record_actuation(&mut self, description: String) {
        if let Some(txn) = self.current_txn {
            if let Some(entry) = self.journal.iter_mut().rev().find(|e| e.txn == txn) {
                entry.actuations.push(description);
            }
        }
    }
}

/// Handler-facing API: actuation, inspection, and service configuration.
///
/// Borrowing both the runtime kernel (the simulated SAM/SRM RPC surface) and
/// the service core, so handlers can act synchronously — the paper's ORCA
/// service proxies these calls to the middleware (§3).
pub struct OrcaCtx<'a> {
    kernel: &'a mut Kernel,
    core: &'a mut ServiceCore,
}

impl<'a> OrcaCtx<'a> {
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    pub fn orca_id(&self) -> OrcaId {
        self.core.orca_id
    }

    // ---- event scope management (§4.1) -----------------------------------

    /// Registers a subscope with the ORCA service event scope.
    pub fn register_event_scope(&mut self, scope: impl Into<EventScope>) {
        self.core.scopes.push(scope.into());
    }

    /// Changes the SRM metric poll period (§4.2: "developers can change it
    /// at any point of the execution").
    pub fn set_metric_poll_period(&mut self, period: SimDuration) {
        self.core.poll_period = period;
    }

    /// Registers a one-shot timer; [`Orchestrator::on_timer`] fires with the
    /// given key.
    pub fn set_timer(&mut self, delay: SimDuration, key: &str) {
        let due = self.now() + delay;
        self.core.timers.push((due, key.to_string()));
        self.core
            .timers
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    }

    // ---- application registry --------------------------------------------

    /// Dynamically registers an additional manageable application (listed as
    /// future work in the paper's §7; supported here directly).
    pub fn register_app(&mut self, adl: Adl) {
        let graph = GraphStore::from_adl(&adl);
        self.core.apps.insert(
            adl.app_name.clone(),
            ManagedApp {
                name: adl.app_name.clone(),
                adl,
                graph,
            },
        );
    }

    /// The in-memory stream-graph representation of a managed application.
    pub fn graph(&self, app_name: &str) -> Option<&GraphStore> {
        self.core.apps.get(app_name).map(|a| &a.graph)
    }

    /// Graph of the application a managed job runs.
    pub fn graph_of_job(&self, job: JobId) -> Option<&GraphStore> {
        let rec = self.core.jobs.get(&job)?;
        self.graph(&rec.app_name)
    }

    // ---- direct actuation (§4) --------------------------------------------

    /// Submits a managed application directly (no configuration). The job is
    /// owned by this orchestrator.
    pub fn submit_app(&mut self, app_name: &str) -> Result<JobId, OrcaError> {
        let adl = self.core.prepare_adl(app_name, None)?;
        self.do_submit(adl, app_name, None)
    }

    /// Submits a managed application with its host pools rewritten to be
    /// exclusive (§4.3) — the replica-manager pattern of §5.2.
    pub fn submit_app_exclusive(&mut self, app_name: &str) -> Result<JobId, OrcaError> {
        let mut adl = self.core.prepare_adl(app_name, None)?;
        self.core.exclusive_uniquifier += 1;
        let tag = format!("{app_name}#{}", self.core.exclusive_uniquifier);
        adl.make_host_pools_exclusive(&tag);
        self.do_submit(adl, app_name, None)
    }

    fn do_submit(
        &mut self,
        adl: Adl,
        app_name: &str,
        config_id: Option<String>,
    ) -> Result<JobId, OrcaError> {
        let job = self
            .kernel
            .submit_job(adl, Some(self.core.orca_id))
            .map_err(OrcaError::Runtime)?;
        self.core
            .record_actuation(format!("submit({app_name}) -> {job}"));
        self.core.jobs.insert(
            job,
            JobRecord {
                app_name: app_name.to_string(),
                config_id: config_id.clone(),
            },
        );
        if let Some(cfg) = &config_id {
            self.core.deps.mark_submitted(cfg, job, self.kernel.now());
        }
        let at = self.kernel.now();
        self.core.enqueue_job_event(
            true,
            JobEventContext {
                job,
                app_name: app_name.to_string(),
                config_id,
                at,
            },
        );
        Ok(job)
    }

    /// Cancels a job started through this ORCA service.
    pub fn cancel_job(&mut self, job: JobId) -> Result<(), OrcaError> {
        let rec = self.core.require_managed(job)?.clone();
        self.kernel.cancel_job(job).map_err(OrcaError::Runtime)?;
        self.core.record_actuation(format!("cancel({job})"));
        self.core.jobs.remove(&job);
        if let Some(cfg) = &rec.config_id {
            self.core.deps.mark_cancelled(cfg);
        }
        let at = self.kernel.now();
        self.core.enqueue_job_event(
            false,
            JobEventContext {
                job,
                app_name: rec.app_name,
                config_id: rec.config_id,
                at,
            },
        );
        Ok(())
    }

    /// Restarts a PE of a managed job. Operator state is recovered from the
    /// kernel's newest compatible checkpoint when checkpointing is enabled,
    /// and comes back fresh otherwise (see [`Kernel::restart_pe`]). Returns
    /// the replacement PE id.
    pub fn restart_pe(&mut self, pe: PeId) -> Result<PeId, OrcaError> {
        let (job, _) = self
            .kernel
            .sam
            .pe_lookup(pe)
            .ok_or(OrcaError::Runtime(RuntimeError::UnknownPe(pe)))?;
        self.core.require_managed(job)?;
        let new_pe = self.kernel.restart_pe(pe).map_err(OrcaError::Runtime)?;
        let how = match self.kernel.restart_log().last() {
            Some(rec) if rec.new_pe == new_pe && rec.restore.restored() => "restored",
            _ => "fresh",
        };
        self.core
            .record_actuation(format!("restart({pe}) -> {new_pe} [{how}]"));
        Ok(new_pe)
    }

    /// Stops a PE of a managed job.
    pub fn stop_pe(&mut self, pe: PeId) -> Result<(), OrcaError> {
        let (job, _) = self
            .kernel
            .sam
            .pe_lookup(pe)
            .ok_or(OrcaError::Runtime(RuntimeError::UnknownPe(pe)))?;
        self.core.require_managed(job)?;
        self.kernel.stop_pe(pe).map_err(OrcaError::Runtime)?;
        self.core.record_actuation(format!("stop({pe})"));
        Ok(())
    }

    /// Sends a control item directly into an operator of a managed job (the
    /// "dynamic filter receiving a control command" pattern of §3).
    pub fn inject(
        &mut self,
        job: JobId,
        op: &str,
        port: usize,
        item: StreamItem,
    ) -> Result<(), OrcaError> {
        self.core.require_managed(job)?;
        self.kernel
            .inject(job, op, port, item)
            .map_err(OrcaError::Runtime)
    }

    /// Reads a sink-like operator's recent output (managed jobs only).
    pub fn tap(&self, job: JobId, op: &str) -> Option<Vec<Tuple>> {
        self.core.jobs.get(&job)?;
        self.kernel.tap(job, op)
    }

    /// Time of the newest checkpoint covering a job's ADL PE slot, if any —
    /// the freshness a recovery of that slot would come back with.
    /// Orchestrators rank failover candidates by this instead of by
    /// submission age when checkpointing is active.
    pub fn checkpoint_coverage(&self, job: JobId, adl_index: usize) -> Option<SimTime> {
        self.kernel.checkpoint_coverage(job, adl_index)
    }

    /// Whether the runtime buffers and replays in-flight tuples around
    /// restarts (exactly-once recovery): a restored replica loses nothing,
    /// not even the gap past its snapshot.
    pub fn upstream_backup_enabled(&self) -> bool {
        self.kernel.upstream_backup_enabled()
    }

    // ---- application configurations & dependencies (§4.4) -----------------

    /// Creates an application configuration for later dependency-driven
    /// submission.
    pub fn create_app_config(&mut self, config: AppConfig) -> Result<(), OrcaError> {
        if !self.core.apps.contains_key(&config.app_name) {
            return Err(OrcaError::UnknownApp(config.app_name.clone()));
        }
        self.core.deps.register_config(config)
    }

    /// Registers `dependent` → `dependency` with an uptime requirement;
    /// rejects cycles.
    pub fn register_dependency(
        &mut self,
        dependent: &str,
        dependency: &str,
        uptime: SimDuration,
    ) -> Result<(), OrcaError> {
        self.core
            .deps
            .register_dependency(dependent, dependency, uptime)
    }

    /// Requests a configuration start: the ORCA service submits its
    /// not-yet-running dependencies in order, honouring uptime requirements,
    /// then the target.
    pub fn request_start(&mut self, config_id: &str) -> Result<(), OrcaError> {
        let now = self.kernel.now();
        self.core.deps.request_start(config_id, now)?;
        Ok(())
    }

    /// Requests a configuration cancellation, with starvation protection and
    /// garbage collection of unused upstream applications.
    pub fn request_cancel(&mut self, config_id: &str) -> Result<(), OrcaError> {
        let now = self.kernel.now();
        let plan = self.core.deps.request_cancel(config_id, now)?;
        // The target is cancelled immediately.
        if let Some(job) = self.core.jobs.iter().find_map(|(j, r)| {
            (r.config_id.as_deref() == Some(plan.immediate.as_str())).then_some(*j)
        }) {
            let rec = self.core.jobs.remove(&job).expect("record exists");
            self.kernel.cancel_job(job).map_err(OrcaError::Runtime)?;
            let at = self.kernel.now();
            self.core.enqueue_job_event(
                false,
                JobEventContext {
                    job,
                    app_name: rec.app_name,
                    config_id: rec.config_id,
                    at,
                },
            );
        }
        Ok(())
    }

    /// Job currently running a configuration.
    pub fn job_of_config(&self, config_id: &str) -> Option<JobId> {
        self.core.deps.job_of(config_id)
    }

    /// Configuration a managed job was started from (None for direct
    /// submissions).
    pub fn config_of_job(&self, job: JobId) -> Option<String> {
        self.core.jobs.get(&job).and_then(|r| r.config_id.clone())
    }

    /// Configs currently running under the dependency manager.
    pub fn running_configs(&self) -> Vec<String> {
        self.core
            .deps
            .running_configs()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    // ---- graph inspection by PE (§4.2 inspection queries) ------------------

    /// "Which stream operators reside in PE with id x?"
    pub fn operators_in_pe(&self, pe: PeId) -> Vec<String> {
        let Some((job, adl_index)) = self.kernel.sam.pe_lookup(pe) else {
            return Vec::new();
        };
        let Some(graph) = self.graph_of_job(job) else {
            return Vec::new();
        };
        graph
            .operators_in_pe(adl_index)
            .into_iter()
            .map(|o| o.name.clone())
            .collect()
    }

    /// "Which composites reside in PE with id x?"
    pub fn composites_in_pe(&self, pe: PeId) -> Vec<String> {
        let Some((job, adl_index)) = self.kernel.sam.pe_lookup(pe) else {
            return Vec::new();
        };
        let Some(graph) = self.graph_of_job(job) else {
            return Vec::new();
        };
        graph
            .composites_in_pe(adl_index)
            .into_iter()
            .map(|c| c.path.clone())
            .collect()
    }

    /// "What is the PE id for operator instance y?"
    pub fn pe_of_operator(&self, job: JobId, op: &str) -> Option<PeId> {
        let graph = self.graph_of_job(job)?;
        let adl_index = graph.pe_of_operator(op)?;
        self.kernel.pe_id_of(job, adl_index)
    }

    /// "What is the enclosing composite operator instance name for operator
    /// instance y?"
    pub fn enclosing_composite(&self, job: JobId, op: &str) -> Option<String> {
        self.graph_of_job(job)?
            .enclosing_composite(op)
            .map(|c| c.path.clone())
    }

    /// Jobs this orchestrator manages for an application.
    pub fn jobs_of_app(&self, app_name: &str) -> Vec<JobId> {
        self.core
            .jobs
            .iter()
            .filter(|(_, r)| r.app_name == app_name)
            .map(|(&j, _)| j)
            .collect()
    }

    /// Application name of a managed job.
    pub fn app_of_job(&self, job: JobId) -> Option<&str> {
        self.core.jobs.get(&job).map(|r| r.app_name.as_str())
    }

    // ---- status board (the §5.2 "status file" read by the GUI) -------------

    pub fn set_status(&mut self, key: &str, value: &str) {
        self.core.status.insert(key.to_string(), value.to_string());
    }

    pub fn status(&self, key: &str) -> Option<&str> {
        self.core.status.get(key).map(String::as_str)
    }

    /// Direct kernel access for advanced inspection (simulation-only
    /// capability; real deployments would use dedicated RPCs).
    pub fn kernel(&mut self) -> &mut Kernel {
        self.kernel
    }
}

/// The ORCA service runtime component.
pub struct OrcaService {
    core: ServiceCore,
    logic: Box<dyn Orchestrator>,
    started: bool,
}

impl OrcaService {
    /// Submits an orchestrator to SAM: registers it as a manageable entity
    /// and builds the in-memory graphs of its applications. Attach the
    /// returned service to the [`sps_runtime::World`] as a controller.
    pub fn submit(
        kernel: &mut Kernel,
        descriptor: OrcaDescriptor,
        logic: Box<dyn Orchestrator>,
    ) -> OrcaService {
        let orca_id = kernel.sam.register_orchestrator();
        let mut apps = BTreeMap::new();
        for (name, adl) in descriptor.apps {
            let graph = GraphStore::from_adl(&adl);
            apps.insert(name.clone(), ManagedApp { name, adl, graph });
        }
        kernel.trace.push(
            kernel.now(),
            "orca",
            format!("orchestrator '{}' registered as {orca_id}", descriptor.name),
        );
        OrcaService {
            core: ServiceCore {
                orca_id,
                name: descriptor.name,
                apps,
                scopes: Vec::new(),
                queue: VecDeque::new(),
                deps: DependencyManager::new(),
                jobs: BTreeMap::new(),
                poll_period: SimDuration::from_secs(15),
                last_poll: None,
                metric_epoch: 0,
                failure_epochs: BTreeMap::new(),
                next_failure_epoch: 0,
                timers: Vec::new(),
                pending_user_events: VecDeque::new(),
                status: BTreeMap::new(),
                exclusive_uniquifier: 0,
                stats: ServiceStats::default(),
                next_txn: 0,
                current_txn: None,
                journal: Vec::new(),
            },
            logic,
            started: false,
        }
    }

    pub fn orca_id(&self) -> OrcaId {
        self.core.orca_id
    }

    pub fn name(&self) -> &str {
        &self.core.name
    }

    pub fn stats(&self) -> ServiceStats {
        self.core.stats
    }

    /// Status board read access (what the paper's GUI polls from the status
    /// file, §5.2).
    pub fn status(&self, key: &str) -> Option<&str> {
        self.core.status.get(key).map(String::as_str)
    }

    /// Injects a user-generated event (the §4.1 command tool). Delivered on
    /// the next quantum if it matches a registered [`crate::UserEventScope`].
    pub fn inject_user_event(&mut self, name: &str, payload: ParamMap) {
        self.core
            .pending_user_events
            .push_back((name.to_string(), payload));
    }

    /// Downcast access to the ORCA logic (test/harness inspection).
    pub fn logic<T: Orchestrator>(&self) -> Option<&T> {
        let any: &dyn Any = self.logic.as_ref();
        any.downcast_ref::<T>()
    }

    /// Current number of queued, undelivered events.
    pub fn queued_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Jobs currently managed by this service (submitted, not cancelled).
    pub fn managed_jobs(&self) -> Vec<JobId> {
        self.core.jobs.keys().copied().collect()
    }

    /// Convergence probe for the fault-injection campaign harness: the
    /// service has no undelivered events, SAM holds no pending notifications
    /// for it, and every PE of every managed job is running. After the last
    /// injected fault, a correct adaptation logic must bring this back to
    /// `true` within a bounded number of quanta.
    pub fn quiescent(&self, kernel: &Kernel) -> bool {
        self.core.queue.is_empty()
            && kernel.sam.notifications_pending(self.core.orca_id) == 0
            && self.core.jobs.keys().all(|&job| {
                kernel.sam.job(job).is_some_and(|info| {
                    info.pe_ids
                        .iter()
                        .all(|&pe| kernel.pe_status(pe) == Some(sps_runtime::PeStatus::Up))
                })
            })
    }

    /// The event/actuation journal (§7 extension): one entry per delivered
    /// event, carrying its transaction id and the actuations the handler
    /// performed — sufficient to audit or replay adaptation decisions.
    pub fn journal(&self) -> &[JournalEntry] {
        &self.core.journal
    }

    // ---- event generation ---------------------------------------------------

    fn pull_failures(&mut self, kernel: &mut Kernel) {
        for n in kernel.sam.drain_notifications(self.core.orca_id) {
            let OrcaNotification::PeFailure {
                job,
                pe,
                adl_index,
                reason,
                detected_at,
            } = n;
            self.core.stats.failures_seen += 1;
            let Some(rec) = self.core.jobs.get(&job) else {
                continue;
            };
            let app_name = rec.app_name.clone();
            let keys: Vec<String> = self
                .core
                .scopes
                .iter()
                .filter_map(|s| match s {
                    EventScope::PeFailure(fs) if fs.matches(&app_name, reason.class()) => {
                        Some(fs.key.clone())
                    }
                    _ => None,
                })
                .collect();
            if keys.is_empty() {
                continue;
            }
            let epoch = self.core.failure_epoch(reason.class(), detected_at);
            self.core.queue.push_back(QueuedEvent::PeFailure(
                PeFailureContext {
                    job,
                    app_name,
                    pe,
                    adl_index,
                    reason,
                    detected_at,
                    epoch,
                },
                keys,
            ));
        }
    }

    fn pull_user_events(&mut self, kernel: &Kernel) {
        while let Some((name, payload)) = self.core.pending_user_events.pop_front() {
            let keys: Vec<String> = self
                .core
                .scopes
                .iter()
                .filter_map(|s| match s {
                    EventScope::UserEvent(us) if us.matches(&name) => Some(us.key.clone()),
                    _ => None,
                })
                .collect();
            if keys.is_empty() {
                continue;
            }
            self.core.queue.push_back(QueuedEvent::User(
                UserEventContext {
                    name,
                    payload,
                    at: kernel.now(),
                },
                keys,
            ));
        }
    }

    fn fire_timers(&mut self, kernel: &Kernel) {
        let now = kernel.now();
        while let Some((due, _)) = self.core.timers.first() {
            if *due > now {
                break;
            }
            let (_, key) = self.core.timers.remove(0);
            self.core
                .queue
                .push_back(QueuedEvent::Timer(TimerContext { key, fired_at: now }));
        }
    }

    fn advance_dependencies(&mut self, kernel: &mut Kernel) {
        let now = kernel.now();
        // Ordered submissions.
        for config_id in self.core.deps.due_submissions(now) {
            let cfg = self
                .core
                .deps
                .config(&config_id)
                .expect("pending config exists")
                .clone();
            match self.core.prepare_adl(&cfg.app_name, Some(&cfg)) {
                Ok(adl) => match kernel.submit_job(adl, Some(self.core.orca_id)) {
                    Ok(job) => {
                        self.core.jobs.insert(
                            job,
                            JobRecord {
                                app_name: cfg.app_name.clone(),
                                config_id: Some(config_id.clone()),
                            },
                        );
                        self.core.deps.mark_submitted(&config_id, job, now);
                        self.core.enqueue_job_event(
                            true,
                            JobEventContext {
                                job,
                                app_name: cfg.app_name.clone(),
                                config_id: Some(config_id.clone()),
                                at: now,
                            },
                        );
                    }
                    Err(e) => {
                        kernel.trace.push(
                            now,
                            "orca",
                            format!("submission of config '{config_id}' failed: {e}"),
                        );
                        self.core.deps.abandon_dependents_of(&config_id);
                    }
                },
                Err(e) => {
                    kernel.trace.push(
                        now,
                        "orca",
                        format!("ADL preparation for '{config_id}' failed: {e}"),
                    );
                    self.core.deps.abandon_dependents_of(&config_id);
                }
            }
        }
        // Garbage-collection cancellations.
        for config_id in self.core.deps.due_cancellations(now) {
            let Some(job) = self.core.deps.job_of(&config_id) else {
                continue;
            };
            if kernel.cancel_job(job).is_ok() {
                let rec = self.core.jobs.remove(&job);
                self.core.deps.mark_cancelled(&config_id);
                let app_name = rec.map(|r| r.app_name).unwrap_or_default();
                self.core.enqueue_job_event(
                    false,
                    JobEventContext {
                        job,
                        app_name,
                        config_id: Some(config_id.clone()),
                        at: now,
                    },
                );
                kernel.trace.push(
                    now,
                    "orca",
                    format!("garbage-collected config '{config_id}'"),
                );
            }
        }
    }

    fn poll_metrics(&mut self, kernel: &Kernel) {
        let now = kernel.now();
        let due = match self.core.last_poll {
            None => true,
            Some(last) => now.since(last) >= self.core.poll_period,
        };
        if !due {
            return;
        }
        self.core.last_poll = Some(now);
        self.core.stats.polls += 1;
        let jobs: Vec<JobId> = self.core.jobs.keys().copied().collect();
        if jobs.is_empty() {
            return;
        }
        // One epoch per SRM query round (§4.2).
        self.core.metric_epoch += 1;
        let epoch = self.core.metric_epoch;
        let snapshots = kernel.srm.query_jobs(&jobs);
        for (job, snapshot) in snapshots {
            let rec = &self.core.jobs[&job];
            let app_name = rec.app_name.clone();
            let Some(app) = self.core.apps.get(&app_name) else {
                continue;
            };
            let graph = &app.graph;
            let job_info = kernel.sam.job(job);
            for (key, value) in &snapshot.values {
                self.core.stats.metric_observations_seen += 1;
                match key.as_ref() {
                    MetricKey::Operator(op_name, metric) => {
                        let keys: Vec<String> = self
                            .core
                            .scopes
                            .iter()
                            .filter_map(|s| match s {
                                EventScope::OperatorMetric(ms)
                                    if ms.matches(&app_name, graph, op_name, metric) =>
                                {
                                    Some(ms.key.clone())
                                }
                                _ => None,
                            })
                            .collect();
                        if keys.is_empty() {
                            continue;
                        }
                        let Some(op) = graph.operator(op_name) else {
                            continue;
                        };
                        let pe = job_info
                            .and_then(|ji| ji.pe_ids.get(op.pe).copied())
                            .unwrap_or(PeId(0));
                        self.core.stats.metric_events_matched += 1;
                        self.core.queue.push_back(QueuedEvent::OperatorMetric(
                            OperatorMetricContext {
                                job,
                                app_name: app_name.clone(),
                                instance_name: op_name.clone(),
                                operator_kind: op.kind.clone(),
                                metric: metric.clone(),
                                value: *value,
                                epoch,
                                pe,
                                collected_at: snapshot.collected_at,
                            },
                            keys,
                        ));
                    }
                    MetricKey::OperatorPort(op_name, port, metric) => {
                        let keys: Vec<String> = self
                            .core
                            .scopes
                            .iter()
                            .filter_map(|s| match s {
                                EventScope::OperatorPortMetric(ps)
                                    if ps.matches(&app_name, op_name, *port, metric) =>
                                {
                                    Some(ps.key.clone())
                                }
                                _ => None,
                            })
                            .collect();
                        if keys.is_empty() {
                            continue;
                        }
                        let Some(op) = graph.operator(op_name) else {
                            continue;
                        };
                        let pe = job_info
                            .and_then(|ji| ji.pe_ids.get(op.pe).copied())
                            .unwrap_or(PeId(0));
                        self.core.stats.metric_events_matched += 1;
                        self.core.queue.push_back(QueuedEvent::OperatorPortMetric(
                            OperatorPortMetricContext {
                                job,
                                app_name: app_name.clone(),
                                instance_name: op_name.clone(),
                                operator_kind: op.kind.clone(),
                                port: *port,
                                metric: metric.clone(),
                                value: *value,
                                epoch,
                                pe,
                                collected_at: snapshot.collected_at,
                            },
                            keys,
                        ));
                    }
                    MetricKey::Pe(adl_index, metric) => {
                        let keys: Vec<String> = self
                            .core
                            .scopes
                            .iter()
                            .filter_map(|s| match s {
                                EventScope::PeMetric(ps) if ps.matches(&app_name, metric) => {
                                    Some(ps.key.clone())
                                }
                                _ => None,
                            })
                            .collect();
                        if keys.is_empty() {
                            continue;
                        }
                        let pe = job_info
                            .and_then(|ji| ji.pe_ids.get(*adl_index).copied())
                            .unwrap_or(PeId(0));
                        self.core.stats.metric_events_matched += 1;
                        self.core.queue.push_back(QueuedEvent::PeMetric(
                            PeMetricContext {
                                job,
                                app_name: app_name.clone(),
                                pe,
                                adl_index: *adl_index,
                                metric: metric.clone(),
                                value: *value,
                                epoch,
                                collected_at: snapshot.collected_at,
                            },
                            keys,
                        ));
                    }
                }
            }
        }
    }

    fn drain_queue(&mut self, kernel: &mut Kernel) {
        let mut delivered = 0;
        while let Some(event) = self.core.queue.pop_front() {
            self.core.stats.events_delivered += 1;
            // Open a transaction for this delivery (§7 extension): the
            // journal ties every actuation to the event that caused it.
            self.core.next_txn += 1;
            let txn = self.core.next_txn;
            self.core.current_txn = Some(txn);
            self.core.journal.push(JournalEntry {
                txn,
                at: kernel.now(),
                event: describe_event(&event),
                actuations: Vec::new(),
            });
            if self.core.journal.len() > JOURNAL_CAP {
                self.core.journal.remove(0);
            }
            let mut ctx = OrcaCtx {
                kernel,
                core: &mut self.core,
            };
            match &event {
                QueuedEvent::OperatorMetric(c, keys) => {
                    self.logic.on_operator_metric(&mut ctx, c, keys)
                }
                QueuedEvent::OperatorPortMetric(c, keys) => {
                    self.logic.on_operator_port_metric(&mut ctx, c, keys)
                }
                QueuedEvent::PeMetric(c, keys) => self.logic.on_pe_metric(&mut ctx, c, keys),
                QueuedEvent::PeFailure(c, keys) => self.logic.on_pe_failure(&mut ctx, c, keys),
                QueuedEvent::JobSubmitted(c, keys) => {
                    self.logic.on_job_submitted(&mut ctx, c, keys)
                }
                QueuedEvent::JobCancelled(c, keys) => {
                    self.logic.on_job_cancelled(&mut ctx, c, keys)
                }
                QueuedEvent::Timer(c) => self.logic.on_timer(&mut ctx, c),
                QueuedEvent::User(c, keys) => self.logic.on_user_event(&mut ctx, c, keys),
            }
            self.core.current_txn = None;
            delivered += 1;
            if delivered >= MAX_EVENTS_PER_QUANTUM {
                kernel.trace.push(
                    kernel.now(),
                    "orca",
                    "event delivery cap hit; deferring remainder to next quantum",
                );
                break;
            }
        }
    }
}

impl Controller for OrcaService {
    fn on_quantum(&mut self, kernel: &mut Kernel) {
        // A crashed ORCA service does nothing until its recovery completes:
        // its internal queue freezes intact and SAM keeps queueing its
        // notifications durably — the backlog is replayed on the first pull
        // after recovery.
        if kernel.orca_is_down(self.core.orca_id) {
            return;
        }
        if !self.started {
            self.started = true;
            let start = OrcaStartContext {
                orca_id: self.core.orca_id,
                now: kernel.now(),
            };
            let mut ctx = OrcaCtx {
                kernel,
                core: &mut self.core,
            };
            self.logic.on_start(&mut ctx, &start);
        }
        self.pull_failures(kernel);
        self.pull_user_events(kernel);
        self.fire_timers(kernel);
        self.advance_dependencies(kernel);
        self.poll_metrics(kernel);
        self.drain_queue(kernel);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{JobEventScope, OperatorMetricScope, PeFailureScope, UserEventScope};
    use sps_model::compiler::{compile, CompileOptions};
    use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
    use sps_runtime::{Cluster, RuntimeConfig, World};

    /// beacon → filter (queueSize-heavy) → sink.
    fn pipeline_adl(name: &str) -> Adl {
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", 100.0),
        );
        m.operator(
            "flt",
            OperatorInvocation::new("Filter").param("predicate", "seq % 2 == 0"),
        );
        m.operator("snk", OperatorInvocation::new("Sink").sink());
        m.pipe("src", "flt");
        m.pipe("flt", "snk");
        let model = AppModelBuilder::new(name)
            .build(m.build().unwrap())
            .unwrap();
        compile(&model, CompileOptions::default()).unwrap()
    }

    /// Scripted ORCA logic recording everything it sees.
    #[derive(Default)]
    struct Recorder {
        started: bool,
        metric_events: Vec<(String, String, i64, u64)>,
        failures: Vec<(PeId, String, u64)>,
        submissions: Vec<String>,
        cancellations: Vec<String>,
        timers: Vec<String>,
        user_events: Vec<String>,
        submit_on_start: Vec<&'static str>,
        act_on_failure_restart: bool,
        restart_results: Vec<Result<PeId, OrcaError>>,
    }

    impl Orchestrator for Recorder {
        fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
            self.started = true;
            ctx.register_event_scope(
                OperatorMetricScope::new("procScope")
                    .add_operator_instance("flt")
                    .add_metric("nTuplesProcessed"),
            );
            ctx.register_event_scope(PeFailureScope::new("failScope"));
            ctx.register_event_scope(JobEventScope::new("jobScope"));
            ctx.register_event_scope(UserEventScope::new("userScope").add_name("go"));
            ctx.set_metric_poll_period(SimDuration::from_secs(5));
            for app in self.submit_on_start.clone() {
                ctx.submit_app(app).unwrap();
            }
        }

        fn on_operator_metric(
            &mut self,
            _ctx: &mut OrcaCtx<'_>,
            e: &OperatorMetricContext,
            scopes: &[String],
        ) {
            assert_eq!(scopes, ["procScope".to_string()]);
            self.metric_events
                .push((e.instance_name.clone(), e.metric.clone(), e.value, e.epoch));
        }

        fn on_pe_failure(
            &mut self,
            ctx: &mut OrcaCtx<'_>,
            e: &PeFailureContext,
            scopes: &[String],
        ) {
            assert_eq!(scopes, ["failScope".to_string()]);
            self.failures
                .push((e.pe, e.reason.class().to_string(), e.epoch));
            if self.act_on_failure_restart {
                self.restart_results.push(ctx.restart_pe(e.pe));
            }
        }

        fn on_job_submitted(&mut self, _ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
            self.submissions.push(e.app_name.clone());
        }

        fn on_job_cancelled(&mut self, _ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
            self.cancellations.push(e.app_name.clone());
        }

        fn on_timer(&mut self, _ctx: &mut OrcaCtx<'_>, e: &TimerContext) {
            self.timers.push(e.key.clone());
        }

        fn on_user_event(&mut self, _ctx: &mut OrcaCtx<'_>, e: &UserEventContext, _s: &[String]) {
            self.user_events.push(e.name.clone());
        }
    }

    fn world_with(recorder: Recorder, apps: Vec<Adl>) -> (World, usize) {
        let kernel = Kernel::new(
            Cluster::with_hosts(3),
            sps_engine::OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let mut desc = OrcaDescriptor::new("TestOrca");
        for adl in apps {
            desc = desc.app(adl);
        }
        let service = OrcaService::submit(&mut world.kernel, desc, Box::new(recorder));
        let idx = world.add_controller(Box::new(service));
        (world, idx)
    }

    fn recorder(world: &World, idx: usize) -> &Recorder {
        world
            .controller::<OrcaService>(idx)
            .unwrap()
            .logic::<Recorder>()
            .unwrap()
    }

    #[test]
    fn start_event_fires_once_and_submissions_deliver_job_events() {
        let rec = Recorder {
            submit_on_start: vec!["App"],
            ..Default::default()
        };
        let (mut world, idx) = world_with(rec, vec![pipeline_adl("App")]);
        world.run_for(SimDuration::from_millis(300));
        let r = recorder(&world, idx);
        assert!(r.started);
        assert_eq!(r.submissions, vec!["App".to_string()]);
        // The job actually runs.
        let svc = world.controller::<OrcaService>(idx).unwrap();
        assert_eq!(svc.stats().events_delivered, 1);
        assert_eq!(world.kernel.sam.running_jobs().len(), 1);
    }

    #[test]
    fn metric_events_flow_with_shared_epoch() {
        let rec = Recorder {
            submit_on_start: vec!["App"],
            ..Default::default()
        };
        let (mut world, idx) = world_with(rec, vec![pipeline_adl("App")]);
        // Poll period 5 s; metrics push every 3 s. Run 11 s → at least one
        // poll with data (polls at ~0.1 s [empty], ~5.1 s, ~10.1 s).
        world.run_for(SimDuration::from_secs(11));
        let r = recorder(&world, idx);
        assert!(!r.metric_events.is_empty());
        // Only the scoped (flt, nTuplesProcessed) pairs got through.
        for (op, metric, value, _) in &r.metric_events {
            assert_eq!(op, "flt");
            assert_eq!(metric, "nTuplesProcessed");
            assert!(*value > 0);
        }
        // Values grow over successive polls (epochs increase).
        let epochs: Vec<u64> = r.metric_events.iter().map(|(_, _, _, e)| *e).collect();
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]));
        assert!(epochs.last().unwrap() > epochs.first().unwrap());
        // Unscoped metrics were filtered service-side.
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let stats = svc.stats();
        assert!(stats.metric_observations_seen > stats.metric_events_matched);
    }

    #[test]
    fn quiescence_probe_tracks_failure_and_recovery() {
        let rec = Recorder {
            submit_on_start: vec!["App"],
            act_on_failure_restart: true,
            ..Default::default()
        };
        let (mut world, idx) = world_with(rec, vec![pipeline_adl("App")]);
        world.run_for(SimDuration::from_secs(1));
        assert!(world
            .controller::<OrcaService>(idx)
            .unwrap()
            .quiescent(&world.kernel));
        let job = world.kernel.sam.running_jobs()[0];
        let pe = world.kernel.pe_id_of(job, 1).unwrap();
        world.kernel.kill_pe(pe).unwrap();
        // A crashed PE (and, once drained, the replacement's spawn gap)
        // breaks quiescence…
        assert!(!world
            .controller::<OrcaService>(idx)
            .unwrap()
            .quiescent(&world.kernel));
        // …until the handler restarted it and the spawn delay elapsed.
        world.run_for(SimDuration::from_secs(3));
        assert!(world
            .controller::<OrcaService>(idx)
            .unwrap()
            .quiescent(&world.kernel));
        assert_eq!(
            world.controller::<OrcaService>(idx).unwrap().managed_jobs(),
            vec![job]
        );
    }

    #[test]
    fn pe_failure_event_delivery_and_restart_actuation() {
        let rec = Recorder {
            submit_on_start: vec!["App"],
            act_on_failure_restart: true,
            ..Default::default()
        };
        let (mut world, idx) = world_with(rec, vec![pipeline_adl("App")]);
        world.run_for(SimDuration::from_secs(1));
        let job = world.kernel.sam.running_jobs()[0];
        let pe = world.kernel.pe_id_of(job, 1).unwrap();
        world.kernel.kill_pe(pe).unwrap();
        world.run_for(SimDuration::from_secs(3)); // covers the restart delay
        let r = recorder(&world, idx);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].0, pe);
        assert_eq!(r.failures[0].1, "killed");
        // The handler's restart succeeded and produced a fresh PE.
        assert_eq!(r.restart_results.len(), 1);
        let new_pe = *r.restart_results[0].as_ref().unwrap();
        assert_ne!(new_pe, pe);
        assert_eq!(
            world.kernel.pe_status(new_pe),
            Some(sps_runtime::PeStatus::Up)
        );
    }

    #[test]
    fn host_failure_groups_epochs() {
        let rec = Recorder {
            submit_on_start: vec!["App"],
            ..Default::default()
        };
        // One host → all three PEs on it; host kill crashes all at once.
        let kernel = Kernel::new(
            Cluster::with_hosts(1),
            sps_engine::OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("O").app(pipeline_adl("App")),
            Box::new(rec),
        );
        let idx = world.add_controller(Box::new(service));
        world.run_for(SimDuration::from_secs(1));
        world.kernel.kill_host("host0").unwrap();
        world.run_for(SimDuration::from_secs(1));
        let r = recorder(&world, idx);
        assert_eq!(r.failures.len(), 3);
        let epochs: Vec<u64> = r.failures.iter().map(|(_, _, e)| *e).collect();
        assert!(
            epochs.windows(2).all(|w| w[0] == w[1]),
            "one physical event must share an epoch: {epochs:?}"
        );
        assert!(r.failures.iter().all(|(_, c, _)| c == "hostFailure"));
    }

    #[test]
    fn timers_and_user_events() {
        let rec = Recorder::default();
        let (mut world, idx) = world_with(rec, vec![]);
        world.step(); // deliver start (registers scopes)
        {
            let svc = world.controller_mut::<OrcaService>(idx).unwrap();
            svc.inject_user_event("go", ParamMap::new());
            svc.inject_user_event("ignored", ParamMap::new());
        }
        world.run_for(SimDuration::from_millis(200));
        let r = recorder(&world, idx);
        assert_eq!(r.user_events, vec!["go".to_string()]);

        // Timer set via a user-event handler? Use a fresh world with a
        // timer-setting orchestrator instead: reuse Recorder by setting the
        // timer directly through a scripted controller is overkill — the
        // sentiment app covers timers; here check service-level plumbing.
    }

    /// Orchestrator that sets a timer in on_start.
    struct TimerLogic {
        fired: Vec<(String, SimTime)>,
    }

    impl Orchestrator for TimerLogic {
        fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
            ctx.set_timer(SimDuration::from_millis(500), "first");
            ctx.set_timer(SimDuration::from_millis(1500), "second");
        }
        fn on_timer(&mut self, _ctx: &mut OrcaCtx<'_>, e: &TimerContext) {
            self.fired.push((e.key.clone(), e.fired_at));
        }
    }

    #[test]
    fn timers_fire_in_order_at_due_times() {
        let kernel = Kernel::new(
            Cluster::with_hosts(1),
            sps_engine::OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("T"),
            Box::new(TimerLogic { fired: vec![] }),
        );
        let idx = world.add_controller(Box::new(service));
        world.run_for(SimDuration::from_secs(2));
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let logic = svc.logic::<TimerLogic>().unwrap();
        assert_eq!(logic.fired.len(), 2);
        assert_eq!(logic.fired[0].0, "first");
        // Start was delivered at the end of the first quantum (t=100ms), so
        // "first" fires at 600 ms.
        assert_eq!(logic.fired[0].1, SimTime::from_millis(600));
        assert_eq!(logic.fired[1].0, "second");
        assert_eq!(logic.fired[1].1, SimTime::from_millis(1600));
    }

    /// Orchestrator that tries to act on a job it does not manage.
    struct Trespasser {
        victim: JobId,
        victim_pe: PeId,
        results: Vec<OrcaError>,
    }

    impl Orchestrator for Trespasser {
        fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
            if let Err(e) = ctx.cancel_job(self.victim) {
                self.results.push(e);
            }
            if let Err(e) = ctx.restart_pe(self.victim_pe) {
                self.results.push(e);
            }
            if let Err(e) = ctx.stop_pe(self.victim_pe) {
                self.results.push(e);
            }
            if let Err(e) = ctx.inject(self.victim, "snk", 0, StreamItem::Tuple(Tuple::new())) {
                self.results.push(e);
            }
        }
    }

    #[test]
    fn acting_on_unmanaged_jobs_is_a_runtime_error() {
        let kernel = Kernel::new(
            Cluster::with_hosts(1),
            sps_engine::OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        // Victim job submitted outside any orchestrator.
        let victim = world
            .kernel
            .submit_job(pipeline_adl("Victim"), None)
            .unwrap();
        let victim_pe = world.kernel.pe_id_of(victim, 0).unwrap();
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("T"),
            Box::new(Trespasser {
                victim,
                victim_pe,
                results: vec![],
            }),
        );
        let idx = world.add_controller(Box::new(service));
        world.step();
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let logic = svc.logic::<Trespasser>().unwrap();
        assert_eq!(logic.results.len(), 4);
        assert!(logic
            .results
            .iter()
            .all(|e| matches!(e, OrcaError::NotManaged(_))));
        // The victim is untouched.
        assert_eq!(world.kernel.sam.running_jobs(), vec![victim]);
    }

    /// Orchestrator using the graph-inspection API after submitting.
    struct Inspector {
        report: Vec<String>,
    }

    impl Orchestrator for Inspector {
        fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
            let job = ctx.submit_app("App").unwrap();
            let pe = ctx.pe_of_operator(job, "flt").unwrap();
            self.report.push(format!("flt in {pe}"));
            for op in ctx.operators_in_pe(pe) {
                self.report.push(format!("pe has {op}"));
            }
            assert!(ctx.enclosing_composite(job, "flt").is_none());
            assert_eq!(ctx.jobs_of_app("App"), vec![job]);
            assert_eq!(ctx.app_of_job(job), Some("App"));
            ctx.set_status("active", "replica0");
        }
    }

    #[test]
    fn inspection_api_and_status_board() {
        let kernel = Kernel::new(
            Cluster::with_hosts(1),
            sps_engine::OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("I").app(pipeline_adl("App")),
            Box::new(Inspector { report: vec![] }),
        );
        let idx = world.add_controller(Box::new(service));
        world.step();
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let logic = svc.logic::<Inspector>().unwrap();
        assert_eq!(logic.report.len(), 2);
        assert!(logic.report[1].contains("flt"));
        assert_eq!(svc.status("active"), Some("replica0"));
        assert_eq!(svc.status("ghost"), None);
    }

    #[test]
    fn unknown_app_submission_fails() {
        struct BadSubmit {
            err: Option<OrcaError>,
        }
        impl Orchestrator for BadSubmit {
            fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
                self.err = ctx.submit_app("Ghost").err();
            }
        }
        let kernel = Kernel::new(
            Cluster::with_hosts(1),
            sps_engine::OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("B"),
            Box::new(BadSubmit { err: None }),
        );
        let idx = world.add_controller(Box::new(service));
        world.step();
        let svc = world.controller::<OrcaService>(idx).unwrap();
        assert!(matches!(
            svc.logic::<BadSubmit>().unwrap().err,
            Some(OrcaError::UnknownApp(_))
        ));
    }
}
