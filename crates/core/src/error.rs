//! Orchestrator error type.

use sps_runtime::{JobId, RuntimeError};
use std::fmt;

/// Errors reported by the ORCA service to the ORCA logic.
#[derive(Debug, Clone, PartialEq)]
pub enum OrcaError {
    /// Actuation attempted on a job this orchestrator did not start (§3:
    /// "If the ORCA logic attempts to act on jobs that it did not start, the
    /// ORCA service reports a runtime error").
    NotManaged(JobId),
    /// Referenced application name is not in the orchestrator's descriptor.
    UnknownApp(String),
    /// Referenced application configuration id was never created.
    UnknownConfig(String),
    /// An application configuration with this id already exists.
    DuplicateConfig(String),
    /// Registering this dependency would create a cycle (§4.4).
    DependencyCycle(String),
    /// Cancellation refused: the application feeds other running
    /// applications (§4.4 starvation protection).
    WouldStarve(String),
    /// A `${...}` submission-time parameter was not provided.
    MissingParam { config: String, param: String },
    /// The configuration is already running.
    AlreadyRunning(String),
    /// The configuration is not running.
    NotRunning(String),
    /// Underlying middleware failure.
    Runtime(RuntimeError),
}

impl fmt::Display for OrcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrcaError::NotManaged(j) => {
                write!(f, "job {j} was not started through this ORCA service")
            }
            OrcaError::UnknownApp(a) => write!(f, "unknown application '{a}'"),
            OrcaError::UnknownConfig(c) => write!(f, "unknown app configuration '{c}'"),
            OrcaError::DuplicateConfig(c) => {
                write!(f, "app configuration '{c}' already exists")
            }
            OrcaError::DependencyCycle(m) => write!(f, "dependency cycle: {m}"),
            OrcaError::WouldStarve(m) => {
                write!(f, "cancellation refused, would starve dependents: {m}")
            }
            OrcaError::MissingParam { config, param } => {
                write!(
                    f,
                    "config '{config}' missing submission parameter '{param}'"
                )
            }
            OrcaError::AlreadyRunning(c) => write!(f, "configuration '{c}' already running"),
            OrcaError::NotRunning(c) => write!(f, "configuration '{c}' is not running"),
            OrcaError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for OrcaError {}

impl From<RuntimeError> for OrcaError {
    fn from(e: RuntimeError) -> Self {
        OrcaError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OrcaError::NotManaged(JobId(3)).to_string().contains("job3"));
        assert!(OrcaError::WouldStarve("fb feeds sn".into())
            .to_string()
            .contains("starve"));
        assert!(OrcaError::MissingParam {
            config: "c".into(),
            param: "attr".into()
        }
        .to_string()
        .contains("attr"));
        let e: OrcaError = RuntimeError::UnknownJob(JobId(1)).into();
        assert!(matches!(e, OrcaError::Runtime(_)));
    }
}
