//! Application sets and dependencies (§4.4).
//!
//! Developers create *application configurations* and register
//! unidirectional dependencies between them (with cycle rejection and
//! per-edge *uptime requirements*). On a start request, the manager snapshots
//! the dependency graph, prunes everything not needed by the requested
//! application, and plans ordered submissions: an application is due only
//! after each of its dependencies has been running for that edge's uptime.
//! On a cancellation request, it refuses to starve running dependents, and
//! otherwise garbage-collects now-unused upstream applications after their
//! configured timeouts — removing an application from the cancellation queue
//! ("resurrection") if a new start request reuses it before the timeout.

use crate::error::OrcaError;
use sps_model::value::ParamMap;
use sps_model::Value;
use sps_runtime::JobId;
use sps_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// An application configuration (§4.4): identifier, application name,
/// submission-time parameters, and garbage-collection policy.
#[derive(Clone, Debug, PartialEq)]
pub struct AppConfig {
    pub id: String,
    pub app_name: String,
    /// Submission-time parameters, substituted into ADL operator params of
    /// the form `"${key}"`.
    pub params: ParamMap,
    /// May the ORCA service cancel this application automatically when it is
    /// no longer used?
    pub garbage_collectable: bool,
    /// How long a garbage-collectable application keeps running after
    /// becoming unused.
    pub gc_timeout: SimDuration,
    /// Rewrite host pools to be exclusive before submission (§4.3).
    pub exclusive_hosts: bool,
}

impl AppConfig {
    pub fn new(id: &str, app_name: &str) -> Self {
        AppConfig {
            id: id.to_string(),
            app_name: app_name.to_string(),
            params: ParamMap::new(),
            garbage_collectable: true,
            gc_timeout: SimDuration::ZERO,
            exclusive_hosts: false,
        }
    }

    pub fn param(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.params.insert(key.to_string(), value.into());
        self
    }

    pub fn not_garbage_collectable(mut self) -> Self {
        self.garbage_collectable = false;
        self
    }

    pub fn gc_timeout(mut self, d: SimDuration) -> Self {
        self.gc_timeout = d;
        self
    }

    pub fn exclusive_hosts(mut self) -> Self {
        self.exclusive_hosts = true;
        self
    }
}

/// A dependency edge: `dependent` requires `dependency`, and may only start
/// `uptime` after `dependency` was submitted.
#[derive(Clone, Debug, PartialEq)]
struct Edge {
    dependent: String,
    dependency: String,
    uptime: SimDuration,
}

/// A planned cancellation: `(due time, config id)`.
pub type CancelEntry = (SimTime, String);

/// Result of a cancellation request.
#[derive(Clone, Debug, PartialEq)]
pub struct CancelPlan {
    /// Cancelled immediately (the request target).
    pub immediate: String,
    /// Upstream applications queued for garbage collection.
    pub queued: Vec<CancelEntry>,
}

/// The dependency bookkeeping of one ORCA service.
#[derive(Default)]
pub struct DependencyManager {
    configs: BTreeMap<String, AppConfig>,
    edges: Vec<Edge>,
    /// Running configs and their jobs.
    running: BTreeMap<String, JobId>,
    /// When each running config was submitted.
    submit_times: BTreeMap<String, SimTime>,
    /// Configs exempt from GC because the logic submitted them explicitly.
    explicit: BTreeSet<String>,
    /// Planned future submissions, `(due, config)`, kept sorted.
    pending_submissions: Vec<(SimTime, String)>,
    /// GC queue, `(due, config)`, kept sorted.
    cancel_queue: Vec<CancelEntry>,
}

impl DependencyManager {
    pub fn new() -> Self {
        Self::default()
    }

    // ---- configuration -------------------------------------------------

    pub fn register_config(&mut self, config: AppConfig) -> Result<(), OrcaError> {
        if self.configs.contains_key(&config.id) {
            return Err(OrcaError::DuplicateConfig(config.id));
        }
        self.configs.insert(config.id.clone(), config);
        Ok(())
    }

    pub fn config(&self, id: &str) -> Option<&AppConfig> {
        self.configs.get(id)
    }

    /// Registers `dependent` → `dependency` with an uptime requirement.
    /// Returns an error when either endpoint is unknown or the edge would
    /// create a cycle.
    pub fn register_dependency(
        &mut self,
        dependent: &str,
        dependency: &str,
        uptime: SimDuration,
    ) -> Result<(), OrcaError> {
        for id in [dependent, dependency] {
            if !self.configs.contains_key(id) {
                return Err(OrcaError::UnknownConfig(id.to_string()));
            }
        }
        if dependent == dependency {
            return Err(OrcaError::DependencyCycle(format!(
                "{dependent} cannot depend on itself"
            )));
        }
        // Cycle iff `dependency` already (transitively) depends on
        // `dependent`.
        if self.depends_on(dependency, dependent) {
            return Err(OrcaError::DependencyCycle(format!(
                "{dependency} already depends on {dependent}"
            )));
        }
        self.edges.push(Edge {
            dependent: dependent.to_string(),
            dependency: dependency.to_string(),
            uptime,
        });
        Ok(())
    }

    /// Is there a (transitive) dependency path from `from` to `to`?
    fn depends_on(&self, from: &str, to: &str) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            for e in &self.edges {
                if e.dependent == node {
                    stack.push(&e.dependency);
                }
            }
        }
        false
    }

    /// Direct dependencies of a config: `(dependency id, uptime)`.
    fn dependencies_of(&self, id: &str) -> Vec<(&str, SimDuration)> {
        self.edges
            .iter()
            .filter(|e| e.dependent == id)
            .map(|e| (e.dependency.as_str(), e.uptime))
            .collect()
    }

    /// Direct dependents of a config.
    fn dependents_of(&self, id: &str) -> Vec<&str> {
        self.edges
            .iter()
            .filter(|e| e.dependency == id)
            .map(|e| e.dependent.as_str())
            .collect()
    }

    // ---- start requests --------------------------------------------------

    /// Plans the submissions needed to start `id` at `now`. The plan covers
    /// `id` and all of its transitive dependencies that are not yet running,
    /// each with an absolute due time honouring every uptime requirement
    /// along the way. Side effects: the plan entries are queued as pending
    /// submissions, the target is marked explicitly-submitted, and every
    /// reused application is pulled back off the GC queue.
    pub fn request_start(
        &mut self,
        id: &str,
        now: SimTime,
    ) -> Result<Vec<(SimTime, String)>, OrcaError> {
        if !self.configs.contains_key(id) {
            return Err(OrcaError::UnknownConfig(id.to_string()));
        }
        if self.running.contains_key(id) {
            return Err(OrcaError::AlreadyRunning(id.to_string()));
        }

        // Snapshot: the closure of `id` over dependency edges.
        let mut needed = BTreeSet::new();
        let mut stack = vec![id.to_string()];
        while let Some(node) = stack.pop() {
            if !needed.insert(node.clone()) {
                continue;
            }
            for (dep, _) in self.dependencies_of(&node) {
                stack.push(dep.to_string());
            }
        }

        // Resurrection: reusing an app enqueued for cancellation removes it
        // from the queue, avoiding an unnecessary restart.
        self.cancel_queue.retain(|(_, c)| !needed.contains(c));

        // Compute due times in topological order (the needed set is acyclic
        // by construction).
        let mut due: BTreeMap<String, SimTime> = BTreeMap::new();
        for c in &needed {
            if let Some(&t) = self.submit_times.get(c) {
                due.insert(c.clone(), t); // already running
            }
        }
        while due.len() < needed.len() {
            let mut progressed = false;
            for c in &needed {
                if due.contains_key(c) {
                    continue;
                }
                let deps = self.dependencies_of(c);
                if deps.iter().any(|(d, _)| !due.contains_key(*d)) {
                    continue;
                }
                let mut t = now;
                for (d, uptime) in deps {
                    let dep_start = due[d];
                    t = t.max(dep_start + uptime);
                }
                due.insert(c.clone(), t);
                progressed = true;
            }
            assert!(progressed, "dependency graph must be acyclic");
        }

        self.explicit.insert(id.to_string());

        let mut plan: Vec<(SimTime, String)> = due
            .into_iter()
            .filter(|(c, _)| {
                !self.running.contains_key(c)
                    && !self.pending_submissions.iter().any(|(_, p)| p == c)
            })
            .map(|(c, t)| (t, c))
            .collect();
        plan.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.pending_submissions.extend(plan.iter().cloned());
        self.pending_submissions
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        Ok(plan)
    }

    /// Pops submissions whose due time has arrived.
    pub fn due_submissions(&mut self, now: SimTime) -> Vec<String> {
        let mut out = Vec::new();
        while let Some((t, _)) = self.pending_submissions.first() {
            if *t > now {
                break;
            }
            out.push(self.pending_submissions.remove(0).1);
        }
        out
    }

    /// Records a successful submission.
    pub fn mark_submitted(&mut self, id: &str, job: JobId, at: SimTime) {
        self.running.insert(id.to_string(), job);
        self.submit_times.insert(id.to_string(), at);
    }

    /// Marks a config as explicitly submitted (exempt from GC).
    pub fn mark_explicit(&mut self, id: &str) {
        self.explicit.insert(id.to_string());
    }

    /// Drops pending submissions that (transitively) depend on a config
    /// whose submission failed.
    pub fn abandon_dependents_of(&mut self, failed: &str) -> Vec<String> {
        let doomed: Vec<bool> = self
            .pending_submissions
            .iter()
            .map(|(_, c)| c == failed || self.edges_path(c, failed))
            .collect();
        let mut abandoned = Vec::new();
        let mut kept = Vec::with_capacity(self.pending_submissions.len());
        for (entry, doomed) in self.pending_submissions.drain(..).zip(doomed) {
            if doomed {
                abandoned.push(entry.1);
            } else {
                kept.push(entry);
            }
        }
        self.pending_submissions = kept;
        abandoned
    }

    fn edges_path(&self, from: &str, to: &str) -> bool {
        self.depends_on(from, to)
    }

    // ---- cancellation ------------------------------------------------------

    /// Requests cancellation of a running config. Refuses when running
    /// dependents would starve. On success, returns the plan: the target is
    /// cancelled immediately and now-unused upstream apps are queued for GC
    /// after their timeouts.
    pub fn request_cancel(&mut self, id: &str, now: SimTime) -> Result<CancelPlan, OrcaError> {
        if !self.configs.contains_key(id) {
            return Err(OrcaError::UnknownConfig(id.to_string()));
        }
        if !self.running.contains_key(id) {
            return Err(OrcaError::NotRunning(id.to_string()));
        }
        // Starvation check: a running dependent feeds on this app.
        let hungry: Vec<&str> = self
            .dependents_of(id)
            .into_iter()
            .filter(|d| self.running.contains_key(*d))
            .collect();
        if !hungry.is_empty() {
            return Err(OrcaError::WouldStarve(format!(
                "'{id}' feeds running application(s): {}",
                hungry.join(", ")
            )));
        }

        // The target goes down immediately.
        self.mark_cancelled(id);

        // Fixpoint GC sweep over upstream apps: an app is collectable when
        // it is running, garbage collectable, not explicitly submitted, and
        // no running app outside the doomed set depends on it.
        let mut doomed: BTreeSet<String> = BTreeSet::new();
        doomed.insert(id.to_string());
        loop {
            let mut grew = false;
            let running: Vec<String> = self.running.keys().cloned().collect();
            for c in &running {
                if doomed.contains(c) {
                    continue;
                }
                // Must feed the doomed set (directly or transitively feed the
                // cancelled app) to be a GC candidate at all.
                let feeds_doomed = doomed.iter().any(|d| self.depends_on(d, c));
                if !feeds_doomed {
                    continue;
                }
                let cfg = &self.configs[c];
                if !cfg.garbage_collectable || self.explicit.contains(c) {
                    continue;
                }
                let used_elsewhere = self
                    .dependents_of(c)
                    .into_iter()
                    .any(|d| self.running.contains_key(d) && !doomed.contains(d));
                if used_elsewhere {
                    continue;
                }
                doomed.insert(c.clone());
                grew = true;
            }
            if !grew {
                break;
            }
        }

        let mut queued: Vec<CancelEntry> = doomed
            .iter()
            .filter(|c| c.as_str() != id)
            .map(|c| (now + self.configs[c].gc_timeout, c.clone()))
            .collect();
        queued.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.cancel_queue.extend(queued.iter().cloned());
        self.cancel_queue
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        Ok(CancelPlan {
            immediate: id.to_string(),
            queued,
        })
    }

    /// Pops GC cancellations whose timeout has expired, re-validating that
    /// each is still unused (a dependent may have started meanwhile).
    pub fn due_cancellations(&mut self, now: SimTime) -> Vec<String> {
        let mut out = Vec::new();
        while let Some((t, _)) = self.cancel_queue.first() {
            if *t > now {
                break;
            }
            let (_, c) = self.cancel_queue.remove(0);
            if !self.running.contains_key(&c) {
                continue; // already gone
            }
            let used = self
                .dependents_of(&c)
                .into_iter()
                .any(|d| self.running.contains_key(d));
            if used {
                continue; // resurrected by a dependent
            }
            out.push(c);
        }
        out
    }

    /// Records that a config's job is gone.
    pub fn mark_cancelled(&mut self, id: &str) {
        self.running.remove(id);
        self.submit_times.remove(id);
        self.explicit.remove(id);
    }

    // ---- introspection ----------------------------------------------------

    pub fn job_of(&self, id: &str) -> Option<JobId> {
        self.running.get(id).copied()
    }

    pub fn config_of_job(&self, job: JobId) -> Option<&str> {
        self.running
            .iter()
            .find(|(_, &j)| j == job)
            .map(|(c, _)| c.as_str())
    }

    pub fn running_configs(&self) -> Vec<&str> {
        self.running.keys().map(String::as_str).collect()
    }

    pub fn pending_submission_count(&self) -> usize {
        self.pending_submissions.len()
    }

    pub fn cancel_queue_len(&self) -> usize {
        self.cancel_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// The paper's Figure 7 graph: sn depends on fb and tw (uptime 20);
    /// all depends on fb, tw, fox and msnbc (uptime 80). fox is not
    /// garbage-collectable; everything else is.
    fn figure7() -> DependencyManager {
        let mut m = DependencyManager::new();
        for (id, gc) in [
            ("fb", true),
            ("tw", true),
            ("fox", false),
            ("msnbc", true),
            ("sn", true),
            ("all", true),
        ] {
            let mut cfg = AppConfig::new(id, id).gc_timeout(secs(5));
            if !gc {
                cfg = cfg.not_garbage_collectable();
            }
            m.register_config(cfg).unwrap();
        }
        for dep in ["fb", "tw"] {
            m.register_dependency("sn", dep, secs(20)).unwrap();
        }
        for dep in ["fb", "tw", "fox", "msnbc"] {
            m.register_dependency("all", dep, secs(80)).unwrap();
        }
        m
    }

    #[test]
    fn config_registration_rejects_duplicates() {
        let mut m = DependencyManager::new();
        m.register_config(AppConfig::new("a", "AppA")).unwrap();
        assert!(matches!(
            m.register_config(AppConfig::new("a", "AppA2")),
            Err(OrcaError::DuplicateConfig(_))
        ));
    }

    #[test]
    fn dependency_validation() {
        let mut m = DependencyManager::new();
        m.register_config(AppConfig::new("a", "A")).unwrap();
        m.register_config(AppConfig::new("b", "B")).unwrap();
        m.register_config(AppConfig::new("c", "C")).unwrap();
        assert!(matches!(
            m.register_dependency("a", "ghost", secs(0)),
            Err(OrcaError::UnknownConfig(_))
        ));
        assert!(matches!(
            m.register_dependency("a", "a", secs(0)),
            Err(OrcaError::DependencyCycle(_))
        ));
        m.register_dependency("a", "b", secs(0)).unwrap();
        m.register_dependency("b", "c", secs(0)).unwrap();
        // c → a would close the cycle a → b → c → a.
        assert!(matches!(
            m.register_dependency("c", "a", secs(0)),
            Err(OrcaError::DependencyCycle(_))
        ));
    }

    #[test]
    fn figure7_start_all_plans_roots_then_target() {
        let mut m = figure7();
        let plan = m.request_start("all", at(0)).unwrap();
        // sn is pruned: not needed by all.
        let names: Vec<&str> = plan.iter().map(|(_, c)| c.as_str()).collect();
        assert_eq!(names, vec!["fb", "fox", "msnbc", "tw", "all"]);
        // Roots due immediately; all due 80 s later (the paper's "the thread
        // sleeps for 80 seconds before submitting all").
        for (t, c) in &plan {
            if c == "all" {
                assert_eq!(*t, at(80));
            } else {
                assert_eq!(*t, at(0));
            }
        }
    }

    #[test]
    fn figure7_sn_before_all_when_both_requested() {
        let mut m = figure7();
        m.request_start("all", at(0)).unwrap();
        m.request_start("sn", at(0)).unwrap();
        // Simulate the roots being submitted now.
        for c in m.due_submissions(at(0)) {
            let job = JobId(c.len() as u64); // arbitrary distinct ids
            m.mark_submitted(&c, job, at(0));
        }
        // sn due at 20, all due at 80 — sn submits first (paper: "sn would
        // be submitted first because its required sleeping time (20) is
        // lower than all's (80)").
        assert!(m.due_submissions(at(19)).is_empty());
        assert_eq!(m.due_submissions(at(20)), vec!["sn".to_string()]);
        assert!(m.due_submissions(at(79)).is_empty());
        assert_eq!(m.due_submissions(at(80)), vec!["all".to_string()]);
    }

    #[test]
    fn chained_uptimes_accumulate() {
        let mut m = DependencyManager::new();
        for id in ["a", "b", "c"] {
            m.register_config(AppConfig::new(id, id)).unwrap();
        }
        // c depends on b (uptime 10); b depends on a (uptime 5).
        m.register_dependency("b", "a", secs(5)).unwrap();
        m.register_dependency("c", "b", secs(10)).unwrap();
        let plan = m.request_start("c", at(100)).unwrap();
        let due: BTreeMap<&str, SimTime> = plan.iter().map(|(t, c)| (c.as_str(), *t)).collect();
        assert_eq!(due["a"], at(100));
        assert_eq!(due["b"], at(105));
        assert_eq!(due["c"], at(115));
    }

    #[test]
    fn running_dependencies_count_from_their_submit_time() {
        let mut m = figure7();
        // fb/tw already running for a long time.
        m.mark_submitted("fb", JobId(1), at(0));
        m.mark_submitted("tw", JobId(2), at(0));
        let plan = m.request_start("sn", at(1000)).unwrap();
        // Uptime requirement long satisfied → sn due immediately.
        assert_eq!(plan, vec![(at(1000), "sn".to_string())]);
    }

    #[test]
    fn start_rejects_running_or_unknown() {
        let mut m = figure7();
        m.mark_submitted("fb", JobId(1), at(0));
        assert!(matches!(
            m.request_start("fb", at(1)),
            Err(OrcaError::AlreadyRunning(_))
        ));
        assert!(matches!(
            m.request_start("nope", at(1)),
            Err(OrcaError::UnknownConfig(_))
        ));
    }

    fn run_figure7_fully(m: &mut DependencyManager) {
        // Bring up the whole graph: all + sn.
        m.request_start("all", at(0)).unwrap();
        m.request_start("sn", at(0)).unwrap();
        let mut job = 0;
        for t in 0..=80 {
            for c in m.due_submissions(at(t)) {
                job += 1;
                m.mark_submitted(&c, JobId(job), at(t));
            }
        }
        assert_eq!(m.running_configs().len(), 6);
    }

    #[test]
    fn cancel_refuses_to_starve() {
        let mut m = figure7();
        run_figure7_fully(&mut m);
        // fb feeds running sn and all.
        assert!(matches!(
            m.request_cancel("fb", at(100)),
            Err(OrcaError::WouldStarve(_))
        ));
    }

    #[test]
    fn cancel_all_gcs_unused_feeders_respecting_flags() {
        let mut m = figure7();
        run_figure7_fully(&mut m);
        // Cancel sn first (no dependents).
        let plan = m.request_cancel("sn", at(100)).unwrap();
        assert_eq!(plan.immediate, "sn");
        // fb/tw still feed `all` → not queued.
        assert!(plan.queued.is_empty());

        // Now cancel all: fb, tw, msnbc become unused and GC-able; fox is
        // not garbage collectable.
        let plan = m.request_cancel("all", at(200)).unwrap();
        assert_eq!(plan.immediate, "all");
        let queued: Vec<&str> = plan.queued.iter().map(|(_, c)| c.as_str()).collect();
        assert_eq!(queued, vec!["fb", "msnbc", "tw"]);
        assert!(plan.queued.iter().all(|(t, _)| *t == at(205)));
        // fox survives.
        assert!(m.running_configs().contains(&"fox"));
    }

    #[test]
    fn explicitly_submitted_apps_survive_gc() {
        let mut m = figure7();
        // fb explicitly started by the logic.
        m.request_start("fb", at(0)).unwrap();
        for c in m.due_submissions(at(0)) {
            m.mark_submitted(&c, JobId(1), at(0));
        }
        // Then all starts (reusing fb).
        m.request_start("all", at(10)).unwrap();
        let mut job = 10;
        for t in 10..=95 {
            for c in m.due_submissions(at(t)) {
                job += 1;
                m.mark_submitted(&c, JobId(job), at(t));
            }
        }
        let plan = m.request_cancel("all", at(200)).unwrap();
        let queued: Vec<&str> = plan.queued.iter().map(|(_, c)| c.as_str()).collect();
        // fb exempt (explicit), fox exempt (not GC-able).
        assert_eq!(queued, vec!["msnbc", "tw"]);
    }

    #[test]
    fn gc_queue_fires_after_timeout_and_revalidates() {
        let mut m = figure7();
        run_figure7_fully(&mut m);
        m.request_cancel("sn", at(100)).unwrap();
        let plan = m.request_cancel("all", at(100)).unwrap();
        assert_eq!(plan.queued.len(), 3);
        assert_eq!(m.cancel_queue_len(), 3);
        // Not due yet.
        assert!(m.due_cancellations(at(104)).is_empty());
        // Due at 105 (gc_timeout = 5 s).
        let due = m.due_cancellations(at(105));
        assert_eq!(due, vec!["fb", "msnbc", "tw"]);
        for c in &due {
            m.mark_cancelled(c);
        }
        assert_eq!(m.running_configs(), vec!["fox"]);
    }

    #[test]
    fn resurrection_removes_from_cancel_queue() {
        let mut m = figure7();
        run_figure7_fully(&mut m);
        m.request_cancel("sn", at(100)).unwrap();
        m.request_cancel("all", at(100)).unwrap();
        assert_eq!(m.cancel_queue_len(), 3);
        // Re-request sn before the GC timeout: fb/tw are reused and must be
        // pulled off the queue ("immediately removed from the cancellation
        // queue, avoiding an unnecessary application restart").
        let plan = m.request_start("sn", at(102)).unwrap();
        // fb and tw are still running → only sn itself needs submission, and
        // its uptime requirements are long satisfied.
        assert_eq!(plan, vec![(at(102), "sn".to_string())]);
        assert_eq!(m.cancel_queue_len(), 1); // only msnbc remains
        let due = m.due_cancellations(at(105));
        assert_eq!(due, vec!["msnbc"]);
    }

    #[test]
    fn cancel_rejects_not_running_or_unknown() {
        let mut m = figure7();
        assert!(matches!(
            m.request_cancel("fb", at(0)),
            Err(OrcaError::NotRunning(_))
        ));
        assert!(matches!(
            m.request_cancel("ghost", at(0)),
            Err(OrcaError::UnknownConfig(_))
        ));
    }

    #[test]
    fn abandon_dependents_after_failed_submission() {
        let mut m = figure7();
        m.request_start("all", at(0)).unwrap();
        assert_eq!(m.pending_submission_count(), 5);
        // fox fails to submit: all (which depends on fox) is abandoned.
        let abandoned = m.abandon_dependents_of("fox");
        assert!(abandoned.contains(&"all".to_string()));
        assert!(abandoned.contains(&"fox".to_string()));
        // fb/tw/msnbc remain pending.
        assert_eq!(m.pending_submission_count(), 3);
    }

    #[test]
    fn job_config_mapping() {
        let mut m = figure7();
        m.mark_submitted("fb", JobId(42), at(0));
        assert_eq!(m.job_of("fb"), Some(JobId(42)));
        assert_eq!(m.config_of_job(JobId(42)), Some("fb"));
        assert_eq!(m.job_of("tw"), None);
        assert_eq!(m.config_of_job(JobId(1)), None);
    }

    #[test]
    fn duplicate_start_requests_do_not_duplicate_pending() {
        let mut m = figure7();
        m.request_start("all", at(0)).unwrap();
        let n = m.pending_submission_count();
        // A second overlapping request (sn shares fb/tw) only adds sn.
        m.request_start("sn", at(0)).unwrap();
        assert_eq!(m.pending_submission_count(), n + 1);
    }

    #[test]
    fn app_config_builder() {
        let cfg = AppConfig::new("c1", "App")
            .param("attribute", "gender")
            .not_garbage_collectable()
            .gc_timeout(secs(30))
            .exclusive_hosts();
        assert_eq!(cfg.params["attribute"], Value::Str("gender".into()));
        assert!(!cfg.garbage_collectable);
        assert_eq!(cfg.gc_timeout, secs(30));
        assert!(cfg.exclusive_hosts);
    }
}
