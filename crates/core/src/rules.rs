//! Declarative adaptation rules (§7 future work).
//!
//! The paper closes by proposing that orchestrators could be expressed "via
//! rules (similar to complex event processing) ... and take default
//! adaptation actions when no specialization is provided for a given event
//! (e.g., automatic PE restart)". [`RulePolicy`] implements exactly that: a
//! ready-made [`Orchestrator`] assembled from *rules* — a scope, an optional
//! threshold condition, and a list of actions — with automatic PE restart as
//! the default failure action.

use crate::event::{OperatorMetricContext, OrcaStartContext, PeFailureContext};
use crate::orchestrator::Orchestrator;
use crate::scope::{OperatorMetricScope, PeFailureScope};
use crate::service::OrcaCtx;
use sps_sim::{SimDuration, SimTime};

/// Threshold condition on a metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Condition {
    Above(i64),
    Below(i64),
    /// Fire on every matching observation.
    Always,
}

impl Condition {
    pub fn holds(&self, value: i64) -> bool {
        match self {
            Condition::Above(t) => value > *t,
            Condition::Below(t) => value < *t,
            Condition::Always => true,
        }
    }
}

/// What a fired rule does. Job/PE-directed actions use the identity carried
/// by the triggering event.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleAction {
    /// Restart the event's PE (the paper's canonical default).
    RestartPe,
    /// Stop the event's PE (load shedding by amputation).
    StopPe,
    /// Cancel the event's job.
    CancelJob,
    /// Submit a managed application by name.
    SubmitApp(String),
    /// Request a configuration start through the dependency manager.
    StartConfig(String),
    /// Request a configuration cancellation.
    CancelConfig(String),
    /// Write to the status board.
    SetStatus(String, String),
    /// Arm a one-shot timer.
    SetTimer(String, SimDuration),
}

/// A metric-triggered rule.
#[derive(Clone, Debug)]
pub struct MetricRule {
    pub scope: OperatorMetricScope,
    pub condition: Condition,
    pub actions: Vec<RuleAction>,
    /// Minimum spacing between firings (the §5.1 "once per 10 minutes"
    /// guard, generalized).
    pub holdoff: SimDuration,
}

/// A failure-triggered rule. Empty `actions` means the default adaptation:
/// restart the crashed PE.
#[derive(Clone, Debug)]
pub struct FailureRule {
    pub scope: PeFailureScope,
    pub actions: Vec<RuleAction>,
}

/// Record of a rule firing (for tests/audit; the service journal carries the
/// authoritative trail).
#[derive(Clone, Debug, PartialEq)]
pub struct Firing {
    pub at: SimTime,
    pub rule_key: String,
    pub actions_ok: usize,
    pub actions_failed: usize,
}

/// A rules-driven orchestrator.
#[derive(Default)]
pub struct RulePolicy {
    submit_on_start: Vec<String>,
    metric_poll: Option<SimDuration>,
    metric_rules: Vec<(MetricRule, Option<SimTime>)>,
    failure_rules: Vec<FailureRule>,
    pub firings: Vec<Firing>,
}

impl RulePolicy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit this managed application when the orchestrator starts.
    pub fn submit_on_start(mut self, app: &str) -> Self {
        self.submit_on_start.push(app.to_string());
        self
    }

    /// Override the SRM metric poll period.
    pub fn poll_period(mut self, period: SimDuration) -> Self {
        self.metric_poll = Some(period);
        self
    }

    /// Adds a metric rule. The scope's key doubles as the rule name.
    pub fn on_metric(
        mut self,
        scope: OperatorMetricScope,
        condition: Condition,
        actions: Vec<RuleAction>,
        holdoff: SimDuration,
    ) -> Self {
        self.metric_rules.push((
            MetricRule {
                scope,
                condition,
                actions,
                holdoff,
            },
            None,
        ));
        self
    }

    /// Adds a failure rule; empty actions = default automatic PE restart.
    pub fn on_failure(mut self, scope: PeFailureScope, actions: Vec<RuleAction>) -> Self {
        self.failure_rules.push(FailureRule { scope, actions });
        self
    }

    fn run_actions(
        ctx: &mut OrcaCtx<'_>,
        actions: &[RuleAction],
        job: sps_runtime::JobId,
        pe: sps_runtime::PeId,
    ) -> (usize, usize) {
        let mut ok = 0;
        let mut failed = 0;
        for action in actions {
            let result: Result<(), crate::OrcaError> = match action {
                RuleAction::RestartPe => ctx.restart_pe(pe).map(|_| ()),
                RuleAction::StopPe => ctx.stop_pe(pe),
                RuleAction::CancelJob => ctx.cancel_job(job),
                RuleAction::SubmitApp(app) => ctx.submit_app(app).map(|_| ()),
                RuleAction::StartConfig(cfg) => ctx.request_start(cfg),
                RuleAction::CancelConfig(cfg) => ctx.request_cancel(cfg),
                RuleAction::SetStatus(k, v) => {
                    ctx.set_status(k, v);
                    Ok(())
                }
                RuleAction::SetTimer(key, delay) => {
                    ctx.set_timer(*delay, key);
                    Ok(())
                }
            };
            match result {
                Ok(()) => ok += 1,
                Err(_) => failed += 1,
            }
        }
        (ok, failed)
    }
}

impl Orchestrator for RulePolicy {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        for (rule, _) in &self.metric_rules {
            ctx.register_event_scope(rule.scope.clone());
        }
        for rule in &self.failure_rules {
            ctx.register_event_scope(rule.scope.clone());
        }
        if let Some(period) = self.metric_poll {
            ctx.set_metric_poll_period(period);
        }
        for app in &self.submit_on_start {
            // Failures surface via the trace; a rules policy has no custom
            // error channel by design.
            let _ = ctx.submit_app(app);
        }
    }

    fn on_operator_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        e: &OperatorMetricContext,
        scopes: &[String],
    ) {
        let now = ctx.now();
        for i in 0..self.metric_rules.len() {
            let (rule, last_fired) = &self.metric_rules[i];
            if !scopes.iter().any(|s| s == &rule.scope.key) {
                continue;
            }
            if !rule.condition.holds(e.value) {
                continue;
            }
            if last_fired.is_some_and(|t| now.since(t) < rule.holdoff) {
                continue;
            }
            let actions = rule.actions.clone();
            let key = rule.scope.key.clone();
            self.metric_rules[i].1 = Some(now);
            let (ok, failed) = Self::run_actions(ctx, &actions, e.job, e.pe);
            self.firings.push(Firing {
                at: now,
                rule_key: key,
                actions_ok: ok,
                actions_failed: failed,
            });
        }
    }

    fn on_pe_failure(&mut self, ctx: &mut OrcaCtx<'_>, e: &PeFailureContext, scopes: &[String]) {
        let now = ctx.now();
        for i in 0..self.failure_rules.len() {
            let rule = &self.failure_rules[i];
            if !scopes.iter().any(|s| s == &rule.scope.key) {
                continue;
            }
            let actions = if rule.actions.is_empty() {
                // The paper's default adaptation action.
                vec![RuleAction::RestartPe]
            } else {
                rule.actions.clone()
            };
            let key = rule.scope.key.clone();
            let (ok, failed) = Self::run_actions(ctx, &actions, e.job, e.pe);
            self.firings.push(Firing {
                at: now,
                rule_key: key,
                actions_ok: ok,
                actions_failed: failed,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OrcaDescriptor, OrcaService};
    use sps_engine::OperatorRegistry;
    use sps_model::compiler::{compile, CompileOptions};
    use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
    use sps_model::Adl;
    use sps_runtime::{Cluster, Kernel, PeStatus, RuntimeConfig, World};

    fn app(name: &str, rate: f64) -> Adl {
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", rate),
        );
        m.operator("snk", OperatorInvocation::new("Sink").sink());
        m.pipe("src", "snk");
        let model = AppModelBuilder::new(name)
            .build(m.build().unwrap())
            .unwrap();
        compile(&model, CompileOptions::default()).unwrap()
    }

    fn world_with(policy: RulePolicy, apps: Vec<Adl>) -> (World, usize) {
        let kernel = Kernel::new(
            Cluster::with_hosts(2),
            OperatorRegistry::with_builtins(),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let mut desc = OrcaDescriptor::new("Rules");
        for a in apps {
            desc = desc.app(a);
        }
        let service = OrcaService::submit(&mut world.kernel, desc, Box::new(policy));
        let idx = world.add_controller(Box::new(service));
        (world, idx)
    }

    fn get_policy(world: &World, idx: usize) -> &RulePolicy {
        world
            .controller::<OrcaService>(idx)
            .unwrap()
            .logic::<RulePolicy>()
            .unwrap()
    }

    #[test]
    fn condition_semantics() {
        assert!(Condition::Above(5).holds(6));
        assert!(!Condition::Above(5).holds(5));
        assert!(Condition::Below(5).holds(4));
        assert!(!Condition::Below(5).holds(5));
        assert!(Condition::Always.holds(i64::MIN));
    }

    #[test]
    fn default_failure_rule_restarts_automatically() {
        let policy = RulePolicy::new()
            .submit_on_start("A")
            .on_failure(PeFailureScope::new("auto"), vec![]);
        let (mut world, idx) = world_with(policy, vec![app("A", 10.0)]);
        world.run_for(SimDuration::from_secs(1));
        let job = world.kernel.sam.running_jobs()[0];
        let pe = world.kernel.pe_id_of(job, 0).unwrap();
        world.kernel.kill_pe(pe).unwrap();
        world.run_for(SimDuration::from_secs(4));
        let p = get_policy(&world, idx);
        assert_eq!(p.firings.len(), 1);
        assert_eq!(p.firings[0].rule_key, "auto");
        assert_eq!(p.firings[0].actions_ok, 1);
        // The job has a healthy PE again.
        let new_pe = world.kernel.pe_id_of(job, 0).unwrap();
        assert_ne!(new_pe, pe);
        assert_eq!(world.kernel.pe_status(new_pe), Some(PeStatus::Up));
        // Journal recorded the actuation under the failure event's txn.
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let entry = svc
            .journal()
            .iter()
            .find(|e| e.event.starts_with("peFailure"))
            .unwrap();
        assert_eq!(entry.actuations.len(), 1);
        assert!(entry.actuations[0].starts_with("restart("));
    }

    #[test]
    fn metric_rule_with_threshold_and_holdoff() {
        // Fire when the sink has processed more than 50 tuples; actions:
        // status note + submit a second app. Holdoff far longer than the run
        // → exactly one firing despite many matching events.
        let policy = RulePolicy::new()
            .submit_on_start("A")
            .poll_period(SimDuration::from_secs(3))
            .on_metric(
                OperatorMetricScope::new("hot")
                    .add_operator_instance("snk")
                    .add_metric("nTuplesProcessed"),
                Condition::Above(50),
                vec![
                    RuleAction::SetStatus("state".into(), "hot".into()),
                    RuleAction::SubmitApp("B".into()),
                ],
                SimDuration::from_secs(3600),
            );
        let (mut world, idx) = world_with(policy, vec![app("A", 30.0), app("B", 1.0)]);
        world.run_for(SimDuration::from_secs(30));
        let p = get_policy(&world, idx);
        assert_eq!(p.firings.len(), 1, "{:?}", p.firings);
        assert_eq!(p.firings[0].actions_ok, 2);
        let svc = world.controller::<OrcaService>(idx).unwrap();
        assert_eq!(svc.status("state"), Some("hot"));
        // B was submitted by the rule.
        let apps: Vec<String> = world
            .kernel
            .sam
            .jobs()
            .map(|j| j.app_name.clone())
            .collect();
        assert!(apps.contains(&"B".to_string()));
    }

    #[test]
    fn metric_rule_below_condition_and_failed_actions_counted() {
        // Below(0) never holds for counters; rule never fires.
        let never = RulePolicy::new()
            .submit_on_start("A")
            .poll_period(SimDuration::from_secs(3))
            .on_metric(
                OperatorMetricScope::new("never")
                    .add_operator_instance("snk")
                    .add_metric("nTuplesProcessed"),
                Condition::Below(0),
                vec![RuleAction::RestartPe],
                SimDuration::ZERO,
            );
        let (mut world, idx) = world_with(never, vec![app("A", 30.0)]);
        world.run_for(SimDuration::from_secs(15));
        assert!(get_policy(&world, idx).firings.is_empty());

        // A rule whose action targets an unknown config fails but is
        // recorded (rules are best-effort).
        let failing = RulePolicy::new()
            .submit_on_start("A")
            .poll_period(SimDuration::from_secs(3))
            .on_metric(
                OperatorMetricScope::new("bad")
                    .add_operator_instance("snk")
                    .add_metric("nTuplesProcessed"),
                Condition::Always,
                vec![RuleAction::CancelConfig("ghost".into())],
                SimDuration::from_secs(3600),
            );
        let (mut world, idx) = world_with(failing, vec![app("A", 30.0)]);
        world.run_for(SimDuration::from_secs(15));
        let p = get_policy(&world, idx);
        assert_eq!(p.firings.len(), 1);
        assert_eq!(p.firings[0].actions_failed, 1);
    }

    #[test]
    fn stop_pe_action_sheds_load() {
        let policy = RulePolicy::new()
            .submit_on_start("A")
            .poll_period(SimDuration::from_secs(3))
            .on_metric(
                OperatorMetricScope::new("shed")
                    .add_operator_instance("src")
                    .add_metric("nTuplesSubmitted"),
                Condition::Above(100),
                vec![RuleAction::StopPe],
                SimDuration::from_secs(3600),
            );
        let (mut world, idx) = world_with(policy, vec![app("A", 50.0)]);
        world.run_for(SimDuration::from_secs(20));
        let p = get_policy(&world, idx);
        assert_eq!(p.firings.len(), 1);
        let job = world.kernel.sam.running_jobs()[0];
        let src_pe = world.kernel.pe_id_of(job, 0).unwrap();
        assert_eq!(world.kernel.pe_status(src_pe), Some(PeStatus::Stopped));
    }

    #[test]
    fn timer_action_arms_service_timer() {
        // SetTimer is fire-and-forget for RulePolicy (no on_timer handler),
        // but it must not error and must appear in the journal.
        let policy = RulePolicy::new()
            .submit_on_start("A")
            .poll_period(SimDuration::from_secs(3))
            .on_metric(
                OperatorMetricScope::new("t")
                    .add_operator_instance("snk")
                    .add_metric("nTuplesProcessed"),
                Condition::Always,
                vec![RuleAction::SetTimer(
                    "tick".into(),
                    SimDuration::from_secs(1),
                )],
                SimDuration::from_secs(3600),
            );
        let (mut world, idx) = world_with(policy, vec![app("A", 30.0)]);
        world.run_for(SimDuration::from_secs(15));
        assert_eq!(get_policy(&world, idx).firings.len(), 1);
    }
}
