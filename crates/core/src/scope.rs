//! Event scopes: filtered subscriptions over runtime events (§4.1).
//!
//! The ORCA service's event scope is a **disjunction of subscopes**; an
//! event is delivered when it matches at least one registered subscope, and
//! is delivered exactly once with the keys of *all* matching subscopes.
//! Within one subscope, filter conditions on the *same* attribute are
//! disjunctive (`application A or application B`) while conditions on
//! *different* attributes are conjunctive (`application A and composite
//! type composite1`). Composite-type filters use the recursive containment
//! relation over the graph store — the paper's Figure 5 API, whose SQL
//! equivalent needs a recursive CTE (see [`crate::sqlbase`]).

use sps_model::GraphStore;

/// Empty-means-unconstrained disjunctive filter.
fn passes(filter: &[String], value: &str) -> bool {
    filter.is_empty() || filter.iter().any(|f| f == value)
}

macro_rules! filter_method {
    ($(#[$doc:meta])* $method:ident, $field:ident) => {
        $(#[$doc])*
        pub fn $method(mut self, value: &str) -> Self {
            self.$field.push(value.to_string());
            self
        }
    };
}

/// Subscope over operator-level metrics (paper Figure 5's
/// `OperatorMetricScope`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OperatorMetricScope {
    pub key: String,
    pub metrics: Vec<String>,
    pub operator_types: Vec<String>,
    pub operator_instances: Vec<String>,
    pub composite_types: Vec<String>,
    pub composite_instances: Vec<String>,
    pub applications: Vec<String>,
}

impl OperatorMetricScope {
    pub fn new(key: &str) -> Self {
        OperatorMetricScope {
            key: key.to_string(),
            ..Default::default()
        }
    }

    filter_method!(
        /// Only metrics with this name (`addOperatorMetric`).
        add_metric,
        metrics
    );
    filter_method!(
        /// Only operators of this kind (`addOperatorTypeFilter`).
        add_operator_type,
        operator_types
    );
    filter_method!(
        /// Only this operator instance.
        add_operator_instance,
        operator_instances
    );
    filter_method!(
        /// Only operators residing (recursively) in a composite of this type
        /// (`addCompositeTypeFilter`).
        add_composite_type,
        composite_types
    );
    filter_method!(
        /// Only operators residing (recursively) in this composite instance.
        add_composite_instance,
        composite_instances
    );
    filter_method!(
        /// Only events from this application (`addApplicationFilter`).
        add_application,
        applications
    );

    /// Does an operator-metric observation match this subscope?
    pub fn matches(&self, app_name: &str, graph: &GraphStore, op_name: &str, metric: &str) -> bool {
        if !passes(&self.applications, app_name) || !passes(&self.metrics, metric) {
            return false;
        }
        let Some(op) = graph.operator(op_name) else {
            return false;
        };
        if !passes(&self.operator_types, &op.kind) || !passes(&self.operator_instances, op_name) {
            return false;
        }
        if !self.composite_types.is_empty()
            && !self
                .composite_types
                .iter()
                .any(|t| graph.op_in_composite_type(op_name, t))
        {
            return false;
        }
        if !self.composite_instances.is_empty()
            && !self
                .composite_instances
                .iter()
                .any(|c| graph.op_in_composite_instance(op_name, c))
        {
            return false;
        }
        true
    }
}

/// Subscope over operator-port metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OperatorPortMetricScope {
    pub key: String,
    pub metrics: Vec<String>,
    pub operator_instances: Vec<String>,
    pub ports: Vec<usize>,
    pub applications: Vec<String>,
}

impl OperatorPortMetricScope {
    pub fn new(key: &str) -> Self {
        OperatorPortMetricScope {
            key: key.to_string(),
            ..Default::default()
        }
    }

    filter_method!(add_metric, metrics);
    filter_method!(add_operator_instance, operator_instances);
    filter_method!(add_application, applications);

    pub fn add_port(mut self, port: usize) -> Self {
        self.ports.push(port);
        self
    }

    pub fn matches(&self, app_name: &str, op_name: &str, port: usize, metric: &str) -> bool {
        passes(&self.applications, app_name)
            && passes(&self.metrics, metric)
            && passes(&self.operator_instances, op_name)
            && (self.ports.is_empty() || self.ports.contains(&port))
    }
}

/// Subscope over PE-level metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PeMetricScope {
    pub key: String,
    pub metrics: Vec<String>,
    pub applications: Vec<String>,
}

impl PeMetricScope {
    pub fn new(key: &str) -> Self {
        PeMetricScope {
            key: key.to_string(),
            ..Default::default()
        }
    }

    filter_method!(add_metric, metrics);
    filter_method!(add_application, applications);

    pub fn matches(&self, app_name: &str, metric: &str) -> bool {
        passes(&self.applications, app_name) && passes(&self.metrics, metric)
    }
}

/// Subscope over PE failures (paper Figure 5's `PEFailureScope`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PeFailureScope {
    pub key: String,
    pub applications: Vec<String>,
    /// Crash-reason classes (`operatorFault`, `killed`, `hostFailure`).
    pub reasons: Vec<String>,
}

impl PeFailureScope {
    pub fn new(key: &str) -> Self {
        PeFailureScope {
            key: key.to_string(),
            ..Default::default()
        }
    }

    filter_method!(
        /// Only failures of PEs belonging to this application
        /// (`addApplicationFilter`).
        add_application,
        applications
    );
    filter_method!(
        /// Only this crash-reason class.
        add_reason,
        reasons
    );

    pub fn matches(&self, app_name: &str, reason_class: &str) -> bool {
        passes(&self.applications, app_name) && passes(&self.reasons, reason_class)
    }
}

/// Subscope over ORCA-service job submission/cancellation events (§4.4).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobEventScope {
    pub key: String,
    pub applications: Vec<String>,
    pub config_ids: Vec<String>,
}

impl JobEventScope {
    pub fn new(key: &str) -> Self {
        JobEventScope {
            key: key.to_string(),
            ..Default::default()
        }
    }

    filter_method!(add_application, applications);
    filter_method!(add_config, config_ids);

    pub fn matches(&self, app_name: &str, config_id: Option<&str>) -> bool {
        passes(&self.applications, app_name)
            && (self.config_ids.is_empty()
                || config_id.is_some_and(|c| self.config_ids.iter().any(|f| f == c)))
    }
}

/// Subscope over user-generated events (§4.1 command tool).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UserEventScope {
    pub key: String,
    pub names: Vec<String>,
}

impl UserEventScope {
    pub fn new(key: &str) -> Self {
        UserEventScope {
            key: key.to_string(),
            ..Default::default()
        }
    }

    filter_method!(add_name, names);

    pub fn matches(&self, name: &str) -> bool {
        passes(&self.names, name)
    }
}

/// Any registrable subscope.
#[derive(Clone, Debug, PartialEq)]
pub enum EventScope {
    OperatorMetric(OperatorMetricScope),
    OperatorPortMetric(OperatorPortMetricScope),
    PeMetric(PeMetricScope),
    PeFailure(PeFailureScope),
    JobEvent(JobEventScope),
    UserEvent(UserEventScope),
}

impl EventScope {
    pub fn key(&self) -> &str {
        match self {
            EventScope::OperatorMetric(s) => &s.key,
            EventScope::OperatorPortMetric(s) => &s.key,
            EventScope::PeMetric(s) => &s.key,
            EventScope::PeFailure(s) => &s.key,
            EventScope::JobEvent(s) => &s.key,
            EventScope::UserEvent(s) => &s.key,
        }
    }
}

impl From<OperatorMetricScope> for EventScope {
    fn from(s: OperatorMetricScope) -> Self {
        EventScope::OperatorMetric(s)
    }
}
impl From<OperatorPortMetricScope> for EventScope {
    fn from(s: OperatorPortMetricScope) -> Self {
        EventScope::OperatorPortMetric(s)
    }
}
impl From<PeMetricScope> for EventScope {
    fn from(s: PeMetricScope) -> Self {
        EventScope::PeMetric(s)
    }
}
impl From<PeFailureScope> for EventScope {
    fn from(s: PeFailureScope) -> Self {
        EventScope::PeFailure(s)
    }
}
impl From<JobEventScope> for EventScope {
    fn from(s: JobEventScope) -> Self {
        EventScope::JobEvent(s)
    }
}
impl From<UserEventScope> for EventScope {
    fn from(s: UserEventScope) -> Self {
        EventScope::UserEvent(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_model::adl::{Adl, AdlOperator, AdlPe};
    use sps_model::value::ParamMap;

    /// Graph mirroring the paper's Figure 2: Split/Merge operators inside
    /// two instances of composite1, plus top-level sources/sinks.
    fn figure2_graph() -> GraphStore {
        let mk = |name: &str, kind: &str, comp: Option<&str>| AdlOperator {
            name: name.into(),
            kind: kind.into(),
            composite_path: comp
                .map(|c| vec![(c.to_string(), "composite1".to_string())])
                .unwrap_or_default(),
            params: ParamMap::new(),
            inputs: 1,
            outputs: 1,
            custom_metrics: vec![],
            pe: 0,
            restartable: true,
            checkpointable: true,
        };
        let operators = vec![
            mk("op1", "Beacon", None),
            mk("c1.op3", "Split", Some("c1")),
            mk("c1.op6", "Merge", Some("c1")),
            mk("c2.op3", "Split", Some("c2")),
            mk("c2.op4", "Work", Some("c2")),
            mk("op7", "Sink", None),
        ];
        let adl = Adl {
            app_name: "Figure2".into(),
            pes: vec![AdlPe {
                index: 0,
                operators: operators.iter().map(|o| o.name.clone()).collect(),
                host_pool: None,
                host_exlocate: None,
            }],
            operators,
            streams: vec![],
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        };
        GraphStore::from_adl(&adl)
    }

    /// The paper's Figure 5 scope: queueSize metrics from Split/Merge
    /// operators inside composite1 instances.
    fn figure5_scope() -> OperatorMetricScope {
        OperatorMetricScope::new("opMetricScope")
            .add_composite_type("composite1")
            .add_operator_type("Split")
            .add_operator_type("Merge")
            .add_metric("queueSize")
    }

    #[test]
    fn figure5_scope_matches_exactly_the_paper_set() {
        let g = figure2_graph();
        let s = figure5_scope();
        // Matches: Split/Merge inside composite1 instances, metric queueSize.
        assert!(s.matches("Figure2", &g, "c1.op3", "queueSize"));
        assert!(s.matches("Figure2", &g, "c1.op6", "queueSize"));
        assert!(s.matches("Figure2", &g, "c2.op3", "queueSize"));
        // Non-matches: wrong operator type, outside composite, wrong metric.
        assert!(!s.matches("Figure2", &g, "c2.op4", "queueSize")); // Work
        assert!(!s.matches("Figure2", &g, "op1", "queueSize")); // top level Beacon
        assert!(!s.matches("Figure2", &g, "c1.op3", "nTuplesProcessed"));
        assert!(!s.matches("Figure2", &g, "ghost", "queueSize"));
    }

    #[test]
    fn same_attribute_filters_are_disjunctive() {
        let g = figure2_graph();
        let s = OperatorMetricScope::new("k")
            .add_operator_instance("op1")
            .add_operator_instance("op7");
        assert!(s.matches("Figure2", &g, "op1", "anything"));
        assert!(s.matches("Figure2", &g, "op7", "anything"));
        assert!(!s.matches("Figure2", &g, "c1.op3", "anything"));
    }

    #[test]
    fn different_attribute_filters_are_conjunctive() {
        let g = figure2_graph();
        let s = OperatorMetricScope::new("k")
            .add_application("Figure2")
            .add_operator_type("Split")
            .add_composite_instance("c1");
        assert!(s.matches("Figure2", &g, "c1.op3", "m"));
        assert!(!s.matches("Figure2", &g, "c2.op3", "m")); // wrong instance
        assert!(!s.matches("OtherApp", &g, "c1.op3", "m")); // wrong app
        assert!(!s.matches("Figure2", &g, "c1.op6", "m")); // wrong type
    }

    #[test]
    fn empty_scope_matches_everything_known() {
        let g = figure2_graph();
        let s = OperatorMetricScope::new("k");
        assert!(s.matches("AnyApp", &g, "op1", "anyMetric"));
        // ... but still requires the operator to exist in the graph.
        assert!(!s.matches("AnyApp", &g, "ghost", "m"));
    }

    #[test]
    fn pe_failure_scope_filters() {
        let s = PeFailureScope::new("failureScope").add_application("Figure2");
        assert!(s.matches("Figure2", "killed"));
        assert!(s.matches("Figure2", "hostFailure"));
        assert!(!s.matches("Other", "killed"));
        let s = PeFailureScope::new("k").add_reason("hostFailure");
        assert!(s.matches("Any", "hostFailure"));
        assert!(!s.matches("Any", "killed"));
    }

    #[test]
    fn pe_metric_scope_filters() {
        let s = PeMetricScope::new("k")
            .add_metric("nTupleBytesProcessed")
            .add_application("A");
        assert!(s.matches("A", "nTupleBytesProcessed"));
        assert!(!s.matches("A", "other"));
        assert!(!s.matches("B", "nTupleBytesProcessed"));
    }

    #[test]
    fn port_metric_scope_filters() {
        let s = OperatorPortMetricScope::new("k")
            .add_operator_instance("op")
            .add_port(1)
            .add_metric("queueSize");
        assert!(s.matches("A", "op", 1, "queueSize"));
        assert!(!s.matches("A", "op", 0, "queueSize"));
        assert!(!s.matches("A", "other", 1, "queueSize"));
        // No port filter = all ports.
        let s = OperatorPortMetricScope::new("k");
        assert!(s.matches("A", "x", 7, "m"));
    }

    #[test]
    fn job_event_scope_filters() {
        let s = JobEventScope::new("k").add_application("TrendCalc");
        assert!(s.matches("TrendCalc", None));
        assert!(!s.matches("Other", None));
        let s = JobEventScope::new("k").add_config("replica0");
        assert!(s.matches("Any", Some("replica0")));
        assert!(!s.matches("Any", Some("replica1")));
        assert!(!s.matches("Any", None));
    }

    #[test]
    fn user_event_scope_filters() {
        let s = UserEventScope::new("k").add_name("reload");
        assert!(s.matches("reload"));
        assert!(!s.matches("other"));
        assert!(UserEventScope::new("k").matches("anything"));
    }

    #[test]
    fn scope_enum_key_and_from() {
        let scopes: Vec<EventScope> = vec![
            OperatorMetricScope::new("a").into(),
            OperatorPortMetricScope::new("b").into(),
            PeMetricScope::new("c").into(),
            PeFailureScope::new("d").into(),
            JobEventScope::new("e").into(),
            UserEventScope::new("f").into(),
        ];
        let keys: Vec<&str> = scopes.iter().map(|s| s.key()).collect();
        assert_eq!(keys, vec!["a", "b", "c", "d", "e", "f"]);
    }
}
