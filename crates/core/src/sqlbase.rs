//! The recursive-SQL baseline for event-scope evaluation (§4.1).
//!
//! The paper argues its scope API "offers a much simpler interface ... when
//! compared to an SQL-based approach", and spells out the equivalent SQL: a
//! recursive CTE (`CompPairs`) computing the composite containment closure,
//! joined against operator instances and metrics. This module implements
//! that query plan literally over relational views of the graph store —
//! serving as (a) the baseline for the `scope_vs_sql` bench and (b) the
//! oracle for the property test that the scope matcher and the SQL
//! evaluation select identical metric rows.

use sps_model::GraphStore;

/// Row of `OperatorInstances`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OperatorRow {
    pub oper_name: String,
    pub oper_kind: String,
    /// Direct enclosing composite instance (`compName` in the paper's
    /// query), `None` for top-level operators.
    pub comp_name: Option<String>,
}

/// Row of `CompositeInstances`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompositeRow {
    pub comp_name: String,
    pub comp_kind: String,
    /// Direct parent composite instance, `None` at the top level.
    pub parent_name: Option<String>,
}

/// Row of `OperatorMetrics`.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRow {
    pub oper_name: String,
    pub metric_name: String,
    pub metric_value: i64,
}

/// The relational view the paper's SQL runs over.
#[derive(Clone, Debug, Default)]
pub struct Tables {
    pub operator_instances: Vec<OperatorRow>,
    pub composite_instances: Vec<CompositeRow>,
    pub operator_metrics: Vec<MetricRow>,
}

impl Tables {
    /// Extracts the relational view from a graph store plus a metric
    /// snapshot `(operator, metric, value)`.
    pub fn from_graph(graph: &GraphStore, metrics: &[(String, String, i64)]) -> Tables {
        let composite_instances = graph
            .composite_instances()
            .iter()
            .map(|c| CompositeRow {
                comp_name: c.path.clone(),
                comp_kind: c.type_name.clone(),
                parent_name: c
                    .parent
                    .map(|p| graph.composite_instances()[p].path.clone()),
            })
            .collect();
        let operator_instances = graph
            .operators()
            .map(|o| OperatorRow {
                oper_name: o.name.clone(),
                oper_kind: o.kind.clone(),
                comp_name: o
                    .composite_chain
                    .last()
                    .map(|&c| graph.composite_instances()[c].path.clone()),
            })
            .collect();
        let operator_metrics = metrics
            .iter()
            .map(|(op, m, v)| MetricRow {
                oper_name: op.clone(),
                metric_name: m.clone(),
                metric_value: *v,
            })
            .collect();
        Tables {
            operator_instances,
            composite_instances,
            operator_metrics,
        }
    }

    /// The `CompPairs` recursive CTE: all `(compName, ancestorName)` pairs,
    /// including the seed (composite, direct parent) rows.
    ///
    /// ```sql
    /// WITH CompPairs(compName, parentName) AS (
    ///   SELECT CI.compName, CI.parentName FROM CompositeInstances CI
    ///   UNION ALL
    ///   SELECT CI.compName, CP.parentName
    ///   FROM CompositeInstances CI, CompPairs CP
    ///   WHERE CI.parentName = CP.compName)
    /// ```
    pub fn comp_pairs(&self) -> Vec<(String, String)> {
        // Seed: direct parent relationships.
        let mut pairs: Vec<(String, String)> = self
            .composite_instances
            .iter()
            .filter_map(|c| c.parent_name.clone().map(|p| (c.comp_name.clone(), p)))
            .collect();
        // Fixpoint: extend child → grandparent and beyond.
        let mut frontier = pairs.clone();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for (child, ancestor) in &frontier {
                // CI.parentName = CP.compName: find the ancestor's parent.
                for c in &self.composite_instances {
                    if &c.comp_name == ancestor {
                        if let Some(grand) = &c.parent_name {
                            let pair = (child.clone(), grand.clone());
                            if !pairs.contains(&pair) {
                                pairs.push(pair.clone());
                                next.push(pair);
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        pairs
    }

    /// The paper's full §4.1 query: metric values (with their operators) for
    /// metrics named `metric_name`, on operators of any kind in
    /// `oper_kinds`, residing — at any nesting depth — inside a composite of
    /// type `comp_kind`. Empty `oper_kinds` disables the kind predicate
    /// (matching the scope API's empty-filter semantics).
    pub fn recursive_containment_query(
        &self,
        metric_name: &str,
        oper_kinds: &[&str],
        comp_kind: &str,
    ) -> Vec<(String, i64)> {
        let comp_pairs = self.comp_pairs();
        let mut out = Vec::new();
        // SELECT ... FROM OperatorMetrics OM, OperatorInstances OI,
        //              CompositeInstances CI (, CompPairs CP)
        for om in &self.operator_metrics {
            if om.metric_name != metric_name {
                continue;
            }
            for oi in &self.operator_instances {
                if oi.oper_name != om.oper_name {
                    continue;
                }
                if !oper_kinds.is_empty() && !oper_kinds.contains(&oi.oper_kind.as_str()) {
                    continue;
                }
                let Some(op_comp) = &oi.comp_name else {
                    continue; // top-level operator: contained in nothing
                };
                let mut contained = false;
                for ci in &self.composite_instances {
                    if ci.comp_kind != comp_kind {
                        continue;
                    }
                    // Direct containment: OI.compName = CI.compName.
                    if op_comp == &ci.comp_name {
                        contained = true;
                        break;
                    }
                    // Transitive: OI.compName = CP.compName AND
                    //             CI.compName = CP.parentName.
                    if comp_pairs
                        .iter()
                        .any(|(c, p)| c == op_comp && p == &ci.comp_name)
                    {
                        contained = true;
                        break;
                    }
                }
                if contained {
                    out.push((om.oper_name.clone(), om.metric_value));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::OperatorMetricScope;
    use sps_model::adl::{Adl, AdlOperator, AdlPe};
    use sps_model::value::ParamMap;

    /// Graph with nested composites:
    /// top-level: src;
    /// c1 (outer): opA, and inner composite c1.n (inner): opB;
    /// c2 (outer): opC.
    fn nested_graph() -> GraphStore {
        let mk = |name: &str, kind: &str, path: Vec<(&str, &str)>| AdlOperator {
            name: name.into(),
            kind: kind.into(),
            composite_path: path
                .into_iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            params: ParamMap::new(),
            inputs: 1,
            outputs: 1,
            custom_metrics: vec![],
            pe: 0,
            restartable: true,
            checkpointable: true,
        };
        let operators = vec![
            mk("src", "Beacon", vec![]),
            mk("c1.opA", "Split", vec![("c1", "outer")]),
            mk(
                "c1.n.opB",
                "Split",
                vec![("c1", "outer"), ("c1.n", "inner")],
            ),
            mk("c2.opC", "Merge", vec![("c2", "outer")]),
        ];
        let adl = Adl {
            app_name: "N".into(),
            pes: vec![AdlPe {
                index: 0,
                operators: operators.iter().map(|o| o.name.clone()).collect(),
                host_pool: None,
                host_exlocate: None,
            }],
            operators,
            streams: vec![],
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        };
        GraphStore::from_adl(&adl)
    }

    fn metrics() -> Vec<(String, String, i64)> {
        vec![
            ("src".into(), "queueSize".into(), 1),
            ("c1.opA".into(), "queueSize".into(), 2),
            ("c1.n.opB".into(), "queueSize".into(), 3),
            ("c2.opC".into(), "queueSize".into(), 4),
            ("c1.opA".into(), "nTuplesProcessed".into(), 99),
        ]
    }

    #[test]
    fn comp_pairs_closure() {
        let t = Tables::from_graph(&nested_graph(), &[]);
        let pairs = t.comp_pairs();
        // Only c1.n has a parent: (c1.n, c1). No deeper ancestors.
        assert_eq!(pairs, vec![("c1.n".to_string(), "c1".to_string())]);
    }

    #[test]
    fn query_finds_direct_and_nested_operators() {
        let t = Tables::from_graph(&nested_graph(), &metrics());
        let mut rows = t.recursive_containment_query("queueSize", &["Split", "Merge"], "outer");
        rows.sort();
        assert_eq!(
            rows,
            vec![
                ("c1.n.opB".to_string(), 3), // nested inside outer via inner
                ("c1.opA".to_string(), 2),
                ("c2.opC".to_string(), 4),
            ]
        );
    }

    #[test]
    fn query_filters_metric_and_kind() {
        let t = Tables::from_graph(&nested_graph(), &metrics());
        let rows = t.recursive_containment_query("nTuplesProcessed", &["Split"], "outer");
        assert_eq!(rows, vec![("c1.opA".to_string(), 99)]);
        let rows = t.recursive_containment_query("queueSize", &["Merge"], "inner");
        assert!(rows.is_empty());
        // inner containment only catches opB.
        let rows = t.recursive_containment_query("queueSize", &[], "inner");
        assert_eq!(rows, vec![("c1.n.opB".to_string(), 3)]);
    }

    #[test]
    fn sql_and_scope_matcher_agree_on_figure5() {
        let g = nested_graph();
        let ms = metrics();
        let t = Tables::from_graph(&g, &ms);
        let scope = OperatorMetricScope::new("k")
            .add_composite_type("outer")
            .add_operator_type("Split")
            .add_operator_type("Merge")
            .add_metric("queueSize");
        let mut via_scope: Vec<(String, i64)> = ms
            .iter()
            .filter(|(op, m, _)| scope.matches("N", &g, op, m))
            .map(|(op, _, v)| (op.clone(), *v))
            .collect();
        via_scope.sort();
        let mut via_sql = t.recursive_containment_query("queueSize", &["Split", "Merge"], "outer");
        via_sql.sort();
        assert_eq!(via_scope, via_sql);
    }

    #[test]
    fn empty_tables_yield_empty_results() {
        let t = Tables::default();
        assert!(t.comp_pairs().is_empty());
        assert!(t.recursive_containment_query("m", &["X"], "c").is_empty());
    }
}
