//! Property tests for the orchestrator core:
//!
//! 1. the §4.1 equivalence: the scope-matcher selects exactly the rows the
//!    paper's recursive SQL selects, over random composite hierarchies;
//! 2. dependency-manager invariants: planned due times honour every uptime
//!    requirement; cycles are always rejected; GC never collects an
//!    application that still feeds a running one.

use orca::sqlbase::Tables;
use orca::{AppConfig, DependencyManager, OperatorMetricScope};
use proptest::prelude::*;
use sps_model::adl::{Adl, AdlOperator, AdlPe};
use sps_model::value::ParamMap;
use sps_model::GraphStore;
use sps_runtime::JobId;
use sps_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Scope ≡ SQL over random hierarchies
// ---------------------------------------------------------------------------

/// Random application graph: operators at random nesting levels, with a few
/// composite types repeating at different levels (the case that forces the
/// recursive CTE).
fn arb_graph() -> impl Strategy<Value = (GraphStore, Vec<(String, String, i64)>)> {
    (
        prop::collection::vec((0usize..4, 0usize..3, any::<bool>()), 1..24),
        0usize..3,
    )
        .prop_map(|(ops_spec, _salt)| {
            let mut operators = Vec::new();
            for (i, (depth, type_salt, has_metric)) in ops_spec.iter().enumerate() {
                let mut path = Vec::new();
                let mut prefix = String::new();
                for l in 0..*depth {
                    let inst = if prefix.is_empty() {
                        format!("b{i}l{l}")
                    } else {
                        format!("{prefix}.l{l}")
                    };
                    // Composite types repeat: ctype0..ctype2, varying by
                    // level and salt so some nests repeat a type at
                    // different depths.
                    let ty = format!("ctype{}", (l + type_salt) % 3);
                    path.push((inst.clone(), ty));
                    prefix = inst;
                }
                let name = if prefix.is_empty() {
                    format!("op{i}")
                } else {
                    format!("{prefix}.op{i}")
                };
                operators.push(AdlOperator {
                    name,
                    kind: ["Split", "Merge", "Work"][i % 3].to_string(),
                    composite_path: path,
                    params: ParamMap::new(),
                    inputs: 1,
                    outputs: 1,
                    custom_metrics: vec![],
                    pe: 0,
                    restartable: true,
                    checkpointable: true,
                });
                let _ = has_metric;
            }
            let adl = Adl {
                app_name: "Rand".into(),
                pes: vec![AdlPe {
                    index: 0,
                    operators: operators.iter().map(|o| o.name.clone()).collect(),
                    host_pool: None,
                    host_exlocate: None,
                }],
                operators,
                streams: vec![],
                imports: vec![],
                exports: vec![],
                host_pools: vec![],
            };
            let graph = GraphStore::from_adl(&adl);
            let metrics: Vec<(String, String, i64)> = graph
                .operators()
                .enumerate()
                .flat_map(|(i, o)| {
                    let mut rows = vec![(o.name.clone(), "queueSize".to_string(), i as i64)];
                    if i % 2 == 0 {
                        rows.push((o.name.clone(), "other".to_string(), -1));
                    }
                    rows
                })
                .collect();
            (graph, metrics)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scope_matcher_equals_recursive_sql(
        (graph, metrics) in arb_graph(),
        comp_kind in 0usize..3,
        use_kinds in any::<bool>(),
    ) {
        let comp_kind = format!("ctype{comp_kind}");
        let kinds: Vec<&str> = if use_kinds { vec!["Split", "Merge"] } else { vec![] };

        let mut scope = OperatorMetricScope::new("k")
            .add_composite_type(&comp_kind)
            .add_metric("queueSize");
        for k in &kinds {
            scope = scope.add_operator_type(k);
        }

        let mut via_scope: Vec<(String, i64)> = metrics
            .iter()
            .filter(|(op, m, _)| scope.matches("Rand", &graph, op, m))
            .map(|(op, _, v)| (op.clone(), *v))
            .collect();
        via_scope.sort();

        let tables = Tables::from_graph(&graph, &metrics);
        let mut via_sql = tables.recursive_containment_query("queueSize", &kinds, &comp_kind);
        via_sql.sort();

        prop_assert_eq!(via_scope, via_sql);
    }
}

// ---------------------------------------------------------------------------
// Dependency-manager invariants
// ---------------------------------------------------------------------------

/// Random DAG: edges only from higher-numbered to lower-numbered configs
/// (guaranteed acyclic), with random uptimes and GC flags.
#[derive(Debug, Clone)]
struct DagSpec {
    n: usize,
    edges: Vec<(usize, usize, u64)>, // (dependent, dependency, uptime secs)
    gc: Vec<bool>,
}

fn arb_dag() -> impl Strategy<Value = DagSpec> {
    (2usize..10).prop_flat_map(|n| {
        let edges =
            prop::collection::vec((1usize..n, 0u64..50), 0..(n * 2)).prop_map(move |pairs| {
                pairs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (hi, up))| {
                        let dep = i % hi; // strictly below `hi`
                        (hi, dep, up)
                    })
                    .collect::<Vec<_>>()
            });
        let gc = prop::collection::vec(any::<bool>(), n);
        (Just(n), edges, gc).prop_map(|(n, edges, gc)| DagSpec { n, edges, gc })
    })
}

fn build_manager(spec: &DagSpec) -> DependencyManager {
    let mut m = DependencyManager::new();
    for i in 0..spec.n {
        let mut cfg = AppConfig::new(&format!("c{i}"), &format!("App{i}"))
            .gc_timeout(SimDuration::from_secs(1));
        if !spec.gc[i] {
            cfg = cfg.not_garbage_collectable();
        }
        m.register_config(cfg).unwrap();
    }
    for (a, b, up) in &spec.edges {
        // Duplicate edges are fine; cycles impossible by construction.
        m.register_dependency(
            &format!("c{a}"),
            &format!("c{b}"),
            SimDuration::from_secs(*up),
        )
        .unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn planned_due_times_honor_all_uptimes(spec in arb_dag(), target in 0usize..10) {
        let target = target % spec.n;
        let mut m = build_manager(&spec);
        let now = SimTime::from_secs(100);
        let plan = m.request_start(&format!("c{target}"), now).unwrap();
        let due: BTreeMap<&str, SimTime> =
            plan.iter().map(|(t, c)| (c.as_str(), *t)).collect();
        // Every planned config's due time is ≥ dependency due + uptime, for
        // every edge inside the plan.
        for (a, b, up) in &spec.edges {
            let (ca, cb) = (format!("c{a}"), format!("c{b}"));
            if let (Some(&ta), Some(&tb)) = (due.get(ca.as_str()), due.get(cb.as_str())) {
                prop_assert!(
                    ta >= tb + SimDuration::from_secs(*up),
                    "edge {ca}->{cb} uptime {up}: {ta:?} vs {tb:?}"
                );
            }
        }
        // Nothing is due before `now`, and the target is in the plan.
        for (t, _) in &plan {
            prop_assert!(*t >= now);
        }
        let target_key = format!("c{target}");
        prop_assert!(due.contains_key(target_key.as_str()));
    }

    #[test]
    fn closing_edge_always_detected_as_cycle(spec in arb_dag()) {
        let mut m = build_manager(&spec);
        // For any existing transitive path a→b, adding b→a must fail.
        for (a, _, _) in &spec.edges {
            // c0 is reachable from the highest-indexed dependent in many
            // DAGs; more robustly: test reversing each existing edge's
            // transitive closure head.
            let from = format!("c{a}");
            // Find some config reachable from `from` by walking the plan.
            let mut m2 = build_manager(&spec);
            let plan = m2.request_start(&from, SimTime::ZERO).unwrap();
            for (_, c) in &plan {
                if c != &from {
                    // c is a (transitive) dependency of `from` → the reverse
                    // edge closes a cycle.
                    let r = m.register_dependency(c, &from, SimDuration::ZERO);
                    prop_assert!(
                        r.is_err(),
                        "edge {c}->{from} should close a cycle"
                    );
                }
            }
        }
    }

    #[test]
    fn gc_never_collects_apps_feeding_running_ones(spec in arb_dag()) {
        let mut m = build_manager(&spec);
        // Start everything (every config explicitly — then clear explicit
        // marks by cancelling/restarting is complex; instead start only the
        // sinks: configs nobody depends on).
        let has_dependent: Vec<bool> = (0..spec.n)
            .map(|i| spec.edges.iter().any(|(_, b, _)| *b == i))
            .collect();
        let sinks: Vec<usize> = (0..spec.n).filter(|i| !has_dependent[*i]).collect();
        for &s in &sinks {
            // Ignore AlreadyRunning when a sink is also a dependency of
            // another sink's closure (can't happen: sinks have no
            // dependents) — but it may already be planned.
            let _ = m.request_start(&format!("c{s}"), SimTime::ZERO);
        }
        let mut job = 0u64;
        // Chained uptimes can add up to (n-1) × max_uptime; drive far enough
        // that everything planned actually submits.
        for t in 0..=500u64 {
            for c in m.due_submissions(SimTime::from_secs(t)) {
                job += 1;
                m.mark_submitted(&c, JobId(job), SimTime::from_secs(t));
            }
        }
        // Cancel the first sink (it has no dependents, so this succeeds).
        if let Some(&s) = sinks.first() {
            let plan = m.request_cancel(&format!("c{s}"), SimTime::from_secs(600)).unwrap();
            // Invariant: nothing queued for GC is depended upon by a config
            // that remains running.
            let queued: Vec<&str> = plan.queued.iter().map(|(_, c)| c.as_str()).collect();
            for q in &queued {
                let qi: usize = q[1..].parse().unwrap();
                for (a, b, _) in &spec.edges {
                    if *b == qi {
                        let dependent = format!("c{a}");
                        let dependent_running = m.job_of(&dependent).is_some()
                            && !queued.contains(&dependent.as_str());
                        prop_assert!(
                            !dependent_running,
                            "{q} queued for GC but running {dependent} depends on it"
                        );
                    }
                }
                // And GC'd configs are collectable.
                prop_assert!(spec.gc[qi], "{q} is marked non-collectable");
            }
        }
    }
}
