//! Replica failover (§5.2 / Figure 9): three Trend Calculator replicas in
//! exclusive host pools; killing a PE of the active replica triggers
//! orchestrated failover to the oldest backup and a restart of the crashed
//! PE. The failed replica produces no output while down and *incorrect*
//! (non-full-window) output until its sliding windows refill.
//!
//! Run with: `cargo run --example failover`

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::trend::{trend_app, TrendOrca, TrendParams};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

fn report(world: &World, idx: usize, label: &str) {
    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<TrendOrca>().unwrap();
    println!("--- {label} (t={}) ---", world.now());
    println!("active replica: {}", svc.status("active").unwrap_or("?"));
    for (i, r) in logic.replicas.iter().enumerate() {
        let tap = world.kernel.tap(r.job, "graph").unwrap_or_default();
        let latest = tap.last();
        println!(
            "  replica {i} ({}, {}): latest avg={:?} full={:?}",
            r.job,
            svc.status(&format!("replica{i}")).unwrap_or("?"),
            latest.map(|t| t.get_f64("avg").unwrap()),
            latest.map(|t| t.get_bool("full").unwrap()),
        );
    }
}

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    // Shorter window than the paper's 600 s so the demo recovers quickly.
    let params = TrendParams {
        window_secs: 60.0,
        ..Default::default()
    };
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("TrendOrca").app(trend_app(params)),
        Box::new(TrendOrca::new(3)),
    );
    let idx = world.add_controller(Box::new(service));

    // Phase 1: healthy — replicas agree (Figure 9a).
    world.run_for(SimDuration::from_secs(90));
    report(&world, idx, "healthy: all replicas agree");

    // Phase 2: kill the active replica's calculator PE.
    let active_job = {
        let svc = world.controller::<OrcaService>(idx).unwrap();
        svc.logic::<TrendOrca>().unwrap().active_job()
    };
    let victim = world.kernel.pe_id_of(active_job, 1).unwrap();
    println!("\n[harness] killing {victim} (calculator of the active replica)\n");
    world.kernel.kill_pe(victim).unwrap();
    world.run_for(SimDuration::from_secs(5));
    report(&world, idx, "right after failover (Figure 9b)");

    // Phase 3: the restarted replica's windows refill.
    world.run_for(SimDuration::from_secs(90));
    report(&world, idx, "after window refill: all replicas full again");

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<TrendOrca>().unwrap();
    assert_eq!(logic.failovers.len(), 1);
    println!(
        "\nfailover record: replica {} failed at t={}, new active {}, PE restarted as {:?}",
        logic.failovers[0].failed_replica,
        logic.failovers[0].at,
        logic.failovers[0].new_active,
        logic.failovers[0].restarted_pe
    );
}
