//! Quickstart: build an application, attach an orchestrator, react to a
//! failure.
//!
//! Run with: `cargo run --example quickstart`
//!
//! This walks the full public API surface in ~100 lines:
//! 1. assemble a logical graph (source → filter → sink) with the builder,
//! 2. compile it to an ADL,
//! 3. write an ORCA logic that submits the app, watches its throughput
//!    metric, and auto-restarts crashed PEs,
//! 4. run the world, inject a PE kill, and watch the orchestrator recover
//!    it — streaming sink output live through a printer thread.

use orca::{
    OperatorMetricContext, OperatorMetricScope, OrcaCtx, OrcaDescriptor, OrcaService,
    OrcaStartContext, Orchestrator, PeFailureContext, PeFailureScope,
};
use orca_apps::live;
use orca_apps::SharedStores;
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_runtime::{Cluster, Kernel, KillTarget, RuntimeConfig, World};
use sps_sim::{SimDuration, SimTime};

/// The ORCA logic: self-healing plus throughput reporting.
struct Quickstart {
    job: Option<sps_runtime::JobId>,
}

impl Orchestrator for Quickstart {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_event_scope(
            OperatorMetricScope::new("throughput")
                .add_operator_instance("snk")
                .add_metric("nTuplesProcessed"),
        );
        ctx.register_event_scope(PeFailureScope::new("failures"));
        ctx.set_metric_poll_period(SimDuration::from_secs(5));
        let job = ctx.submit_app("Quickstart").expect("submission");
        println!("[orca] submitted Quickstart as {job}");
        self.job = Some(job);
    }

    fn on_operator_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        e: &OperatorMetricContext,
        _scopes: &[String],
    ) {
        println!(
            "[orca] t={} epoch={} sink processed {} tuples",
            ctx.now(),
            e.epoch,
            e.value
        );
    }

    fn on_pe_failure(&mut self, ctx: &mut OrcaCtx<'_>, e: &PeFailureContext, _s: &[String]) {
        println!(
            "[orca] t={} PE {} of {} crashed ({}); operators affected: {:?} — restarting",
            ctx.now(),
            e.pe,
            e.app_name,
            e.reason.class(),
            ctx.operators_in_pe(e.pe),
        );
        match ctx.restart_pe(e.pe) {
            Ok(new_pe) => println!("[orca] restarted as {new_pe}"),
            Err(err) => println!("[orca] restart failed: {err}"),
        }
    }
}

fn build_app() -> sps_model::Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 25.0),
    );
    m.operator(
        "flt",
        OperatorInvocation::new("Filter").param("predicate", "seq % 5 == 0"),
    );
    m.operator("snk", OperatorInvocation::new("Sink").sink());
    m.pipe("src", "flt");
    m.pipe("flt", "snk");
    let model = AppModelBuilder::new("Quickstart")
        .build(m.build().expect("valid graph"))
        .expect("valid model");
    compile(&model, CompileOptions::default()).expect("compiles")
}

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("QuickstartOrca").app(build_app()),
        Box::new(Quickstart { job: None }),
    );
    let idx = world.add_controller(Box::new(service));

    // Let the app come up, then schedule a mid-run PE kill.
    world.run_for(SimDuration::from_secs(1));
    let job = world.kernel.sam.running_jobs()[0];
    let victim = world.kernel.pe_id_of(job, 1).expect("filter PE");
    world
        .kernel
        .schedule_kill(SimTime::from_secs(12), KillTarget::Pe(victim));
    println!("[harness] scheduled kill of {victim} at t=12s");

    // Stream sink output live while the simulation runs.
    let rx = live::stream_taps(
        &mut world,
        &[(job, "snk".to_string())],
        SimDuration::from_secs(5),
        SimTime::from_secs(30),
    );
    let printer = live::spawn_printer(rx, |u| {
        format!(
            "[sink] t={} +{} tuples (latest seq {:?})",
            u.at,
            u.tuples.len(),
            u.tuples.last().and_then(|t| t.get_int("seq"))
        )
    });
    printer.join().expect("printer thread");

    let svc = world.controller::<OrcaService>(idx).expect("service");
    println!(
        "[harness] done at t={}; orchestrator delivered {} events",
        world.now(),
        svc.stats().events_delivered
    );
    let trace = world.kernel.trace.find("restarted");
    assert!(
        !trace.is_empty(),
        "the orchestrator must have restarted the PE"
    );
    println!("[harness] recovery confirmed: {}", trace[0].message);
}
