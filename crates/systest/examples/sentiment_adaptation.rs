//! Adaptation to incoming data distribution (§5.1 / Figure 8).
//!
//! The sentiment application correlates negative tweets with a pre-computed
//! cause model. Mid-run, the tweet stream drifts to a new complaint cause
//! ("antenna"); the orchestrator watches the unknown/known custom-metric
//! ratio, and when it crosses 1.0 launches the (simulated) Hadoop model
//! recomputation. Afterwards the ratio falls back below 1.0.
//!
//! Run with: `cargo run --example sentiment_adaptation`

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::sentiment::{sentiment_app, SentimentOrca, SentimentParams};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let params = SentimentParams {
        drift_at_secs: 120.0,
        ..Default::default()
    };
    let logic = SentimentOrca::new(stores.clone(), SimDuration::from_secs(3));
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("SentimentOrca").app(sentiment_app(params)),
        Box::new(logic),
    );
    let idx = world.add_controller(Box::new(service));

    println!(
        "initial cause model: {:?}",
        stores.cause_model.snapshot().known_causes
    );
    println!("cause drift scheduled at t=120s (antenna complaints)\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8}",
        "epoch", "t(s)", "ratio", "model_v"
    );

    world.run_for(SimDuration::from_secs(400));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<SentimentOrca>().unwrap();
    for s in &logic.samples {
        // Print every 4th sample to keep the output readable.
        if s.epoch % 4 == 0 {
            println!(
                "{:>6} {:>8.0} {:>8.3} {:>8}{}",
                s.epoch,
                s.at.as_secs_f64(),
                s.ratio,
                s.model_version,
                if s.ratio > 1.0 {
                    "  <-- above threshold"
                } else {
                    ""
                }
            );
        }
    }
    println!(
        "\nHadoop jobs launched: {} (10-minute retrigger guard), completed: {}",
        logic.jobs_launched, logic.jobs_completed
    );
    println!(
        "final cause model: {:?}",
        stores.cause_model.snapshot().known_causes
    );
    let last = logic.samples.last().expect("samples recorded");
    assert!(last.ratio < 1.0, "application must have adapted");
    println!("adaptation confirmed: final ratio {:.3} < 1.0", last.ratio);
}
