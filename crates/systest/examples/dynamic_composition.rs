//! On-demand dynamic application composition (§5.3 / Figure 10).
//!
//! C1 stream readers and C2 profile-query applications come up through
//! dependency-driven submission; the orchestrator expands the composition
//! with C3 segmentation jobs whenever 1500 new attributed profiles appear,
//! and contracts it when a C3 job emits its final punctuation.
//!
//! Run with: `cargo run --example dynamic_composition`

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::social::{composition_descriptor, CompositionOrca};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(4),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let descriptor: OrcaDescriptor = composition_descriptor();
    let service = OrcaService::submit(
        &mut world.kernel,
        descriptor,
        Box::new(CompositionOrca::new(1500)),
    );
    let idx = world.add_controller(Box::new(service));

    world.run_for(SimDuration::from_secs(90));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<CompositionOrca>().unwrap();

    println!("composition timeline (Figure 10 dynamics):");
    println!("{:>8}  {:<3} {:<24} config", "t(s)", "+/-", "application");
    let mut running = 0i64;
    for e in &logic.timeline {
        running += if e.submitted { 1 } else { -1 };
        println!(
            "{:>8.1}  {:<3} {:<24} {:<16} ({} jobs running)",
            e.at.as_secs_f64(),
            if e.submitted { "+" } else { "-" },
            e.app_name,
            e.config_id.as_deref().unwrap_or("-"),
            running
        );
    }
    println!(
        "\nprofile store: {} distinct users ({} with gender, {} with age, {} with location)",
        stores.profile_store.len(),
        stores.profile_store.count_with_attribute("gender"),
        stores.profile_store.count_with_attribute("age"),
        stores.profile_store.count_with_attribute("location"),
    );
    println!(
        "C3 segmentation jobs: launched {}, completed & garbage-collected {}",
        logic.c3_launched, logic.c3_completed
    );
    assert!(logic.c3_launched >= 1, "composition must have expanded");
    assert!(logic.c3_completed >= 1, "composition must have contracted");
}
