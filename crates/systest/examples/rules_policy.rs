//! Rule-based orchestration (the paper's §7 future-work proposal,
//! implemented): express the adaptation policy declaratively instead of
//! writing handler code. A failure rule with no actions performs the default
//! adaptation — automatic PE restart.
//!
//! Run with: `cargo run --example rules_policy`

use orca::{
    Condition, OperatorMetricScope, OrcaDescriptor, OrcaService, PeFailureScope, RuleAction,
    RulePolicy,
};
use sps_engine::OperatorRegistry;
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_runtime::{Cluster, Kernel, KillTarget, RuntimeConfig, World};
use sps_sim::{SimDuration, SimTime};

fn app() -> sps_model::Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 40.0),
    );
    m.operator("snk", OperatorInvocation::new("Sink").sink());
    m.pipe("src", "snk");
    let model = AppModelBuilder::new("Watched")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

fn main() {
    // The whole policy, declaratively: no handler code at all.
    let policy = RulePolicy::new()
        .submit_on_start("Watched")
        .poll_period(SimDuration::from_secs(3))
        // Default adaptation: any PE failure → automatic restart.
        .on_failure(PeFailureScope::new("selfheal"), vec![])
        // Milestone rule: after 500 sink tuples, note it on the status board
        // (once — the holdoff suppresses re-firing).
        .on_metric(
            OperatorMetricScope::new("milestone")
                .add_operator_instance("snk")
                .add_metric("nTuplesProcessed"),
            Condition::Above(500),
            vec![RuleAction::SetStatus(
                "progress".into(),
                "500 tuples milestone".into(),
            )],
            SimDuration::from_secs(3600),
        );

    let kernel = Kernel::new(
        Cluster::with_hosts(2),
        OperatorRegistry::with_builtins(),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("RulesOrca").app(app()),
        Box::new(policy),
    );
    let idx = world.add_controller(Box::new(service));

    // Kill the source PE mid-run; the default rule must heal it.
    world.run_for(SimDuration::from_secs(1));
    let job = world.kernel.sam.running_jobs()[0];
    let victim = world.kernel.pe_id_of(job, 0).unwrap();
    world
        .kernel
        .schedule_kill(SimTime::from_secs(10), KillTarget::Pe(victim));

    world.run_for(SimDuration::from_secs(29));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let policy = svc.logic::<RulePolicy>().unwrap();
    println!("rule firings:");
    for f in &policy.firings {
        println!(
            "  t={} rule '{}' ({} actions ok, {} failed)",
            f.at, f.rule_key, f.actions_ok, f.actions_failed
        );
    }
    println!("status board: progress = {:?}", svc.status("progress"));
    println!("\nevent/actuation journal (§7 transaction ids):");
    for entry in svc.journal().iter().take(12) {
        println!("  txn {:>3} [{}] {}", entry.txn, entry.at, entry.event);
        for a in &entry.actuations {
            println!("           └─ actuation: {a}");
        }
    }
    assert!(policy.firings.iter().any(|f| f.rule_key == "selfheal"));
    assert_eq!(svc.status("progress"), Some("500 tuples milestone"));
    println!("\nself-healing confirmed via declarative rules");
}
