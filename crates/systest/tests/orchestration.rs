//! Integration: ORCA service mechanics across the full stack — scope-based
//! filtering under load, queueSize overload detection with actuation, epoch
//! correlation, and metric poll-period changes at runtime.

use orca::{
    OperatorMetricContext, OperatorMetricScope, OrcaCtx, OrcaDescriptor, OrcaService,
    OrcaStartContext, Orchestrator,
};
use orca_apps::SharedStores;
use sps_engine::{Punct, StreamItem};
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::Adl;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

/// Overloadable pipeline: fast beacon → costly Work → sink, Work and sink
/// fused into one budget-bound PE.
fn overload_adl() -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 400.0),
    );
    m.operator(
        "work",
        OperatorInvocation::new("Work")
            .param("cost", 40i64)
            .colocate("slowpe"),
    );
    m.operator(
        "snk",
        OperatorInvocation::new("Sink").sink().colocate("slowpe"),
    );
    m.pipe("src", "work");
    m.pipe("work", "snk");
    let model = AppModelBuilder::new("Overload")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

/// Watches queueSize and throttles the source via a control injection when
/// backlog crosses a threshold — a §3-style "dynamic filter" actuation.
struct LoadWatcher {
    threshold: i64,
    queue_samples: Vec<(u64, i64)>,
    acted_at_epoch: Option<u64>,
}

impl Orchestrator for LoadWatcher {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_event_scope(
            OperatorMetricScope::new("queue")
                .add_operator_instance("work")
                .add_metric("queueSize"),
        );
        ctx.set_metric_poll_period(SimDuration::from_secs(3));
        ctx.submit_app("Overload").unwrap();
    }

    fn on_operator_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        e: &OperatorMetricContext,
        _scopes: &[String],
    ) {
        self.queue_samples.push((e.epoch, e.value));
        if e.value > self.threshold && self.acted_at_epoch.is_none() {
            self.acted_at_epoch = Some(e.epoch);
            // Stop the source PE outright: the backlog must drain.
            let src_pe = ctx.pe_of_operator(e.job, "src").unwrap();
            ctx.stop_pe(src_pe).unwrap();
        }
    }
}

#[test]
fn queue_growth_detected_and_actuation_drains_backlog() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        // Budget small enough that 400 t/s × cost 40 = 16000 units/s
        // exceeds 10 quanta × 1000 = 10000 units/s.
        RuntimeConfig {
            pe_budget: 1000,
            ..Default::default()
        },
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("LoadOrca").app(overload_adl()),
        Box::new(LoadWatcher {
            threshold: 300,
            queue_samples: vec![],
            acted_at_epoch: None,
        }),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(60));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<LoadWatcher>().unwrap();
    assert!(
        logic.acted_at_epoch.is_some(),
        "queue must have crossed the threshold: {:?}",
        logic.queue_samples
    );
    // After actuation the queue drains to (near) zero.
    let last = logic.queue_samples.last().unwrap();
    assert!(last.1 < 50, "backlog should drain, got {last:?}");
    // And it really did grow before the action.
    let peak = logic.queue_samples.iter().map(|(_, v)| *v).max().unwrap();
    assert!(peak > 300);
}

/// Collects every delivered event's (instance, metric, epoch) triple.
#[derive(Default)]
struct EpochObserver {
    rows: Vec<(String, String, u64)>,
    poll_changed: bool,
}

impl Orchestrator for EpochObserver {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_event_scope(
            OperatorMetricScope::new("all")
                .add_metric("nTuplesProcessed")
                .add_metric("nTuplesSubmitted"),
        );
        ctx.set_metric_poll_period(SimDuration::from_secs(4));
        ctx.submit_app("Overload").unwrap();
    }

    fn on_operator_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        e: &OperatorMetricContext,
        _scopes: &[String],
    ) {
        self.rows
            .push((e.instance_name.clone(), e.metric.clone(), e.epoch));
        // Halfway through, speed up polling (the §4.2 runtime change).
        if e.epoch == 2 && !self.poll_changed {
            self.poll_changed = true;
            ctx.set_metric_poll_period(SimDuration::from_secs(1));
        }
    }
}

#[test]
fn metric_rounds_share_epochs_and_poll_period_is_dynamic() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("EpochOrca").app(overload_adl()),
        Box::new(EpochObserver::default()),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(30));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<EpochObserver>().unwrap();
    assert!(logic.poll_changed);
    // Multiple operators & metrics observed within single epochs: group and
    // check each epoch has >1 row (all collected in the same SRM round).
    let mut per_epoch: std::collections::BTreeMap<u64, usize> = Default::default();
    for (_, _, e) in &logic.rows {
        *per_epoch.entry(*e).or_default() += 1;
    }
    assert!(per_epoch.len() >= 5, "epochs: {per_epoch:?}");
    assert!(per_epoch.values().all(|&n| n >= 2));
    // Faster polling after the change: epochs 3+ arrive ~1 s apart — so the
    // total epoch count exceeds what 4 s polling alone would allow (30/4≈8).
    assert!(
        per_epoch.len() > 8,
        "dynamic poll change should add rounds: {}",
        per_epoch.len()
    );
    let stats = svc.stats();
    assert!(stats.polls as usize >= per_epoch.len());
}

/// Sends a control punctuation into a running operator from the ORCA logic.
struct Controller2 {
    injected: bool,
}

impl Orchestrator for Controller2 {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        let job = ctx.submit_app("Overload").unwrap();
        // Inject a final punct straight into the sink: its builtin final
        // counter must tick without any upstream completion.
        ctx.inject(job, "snk", 0, StreamItem::Punct(Punct::Final))
            .unwrap();
        self.injected = true;
    }
}

#[test]
fn control_injection_reaches_operator() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("C").app(overload_adl()),
        Box::new(Controller2 { injected: false }),
    );
    world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(4));
    let job = world.kernel.sam.running_jobs()[0];
    let info = world.kernel.sam.job(job).unwrap();
    let sink_pe_idx = info.adl.operator("snk").unwrap().pe;
    let pe = info.pe_ids[sink_pe_idx];
    let metrics = world
        .kernel
        .cluster
        .process(pe)
        .unwrap()
        .runtime
        .metrics()
        .op_get("snk", "nFinalPunctsProcessed");
    assert_eq!(metrics, Some(1));
}

/// Missing submission-time parameter: the dependency-driven submission must
/// fail cleanly and abandon dependents, not panic.
struct MissingParamLogic;

impl Orchestrator for MissingParamLogic {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        // The Overload app has no ${...} params, so build a synthetic config
        // against an app that does: reuse the parameterized C3-style app via
        // params map mismatch — create a config with no params for an app
        // whose ADL contains a placeholder.
        ctx.register_app(parameterized_adl());
        ctx.create_app_config(orca::AppConfig::new("cfg", "Parameterized"))
            .unwrap();
        // request_start succeeds (planning), but the submission itself later
        // fails in ADL preparation; test the synchronous path via submit of
        // prepared config: emulate by requesting start and stepping.
        ctx.request_start("cfg").unwrap();
    }
}

fn parameterized_adl() -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("payload", "${flavor}"),
    );
    let model = AppModelBuilder::new("Parameterized")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

#[test]
fn missing_submission_param_fails_cleanly() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("MP"),
        Box::new(MissingParamLogic),
    );
    world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(2));
    // Nothing running, and the trace recorded the preparation failure.
    assert!(world.kernel.sam.running_jobs().is_empty());
    assert!(world
        .kernel
        .trace
        .first_match("ADL preparation for 'cfg' failed")
        .is_some());
}

/// Parameter substitution succeeds when the config provides the value.
struct GoodParamLogic;

impl Orchestrator for GoodParamLogic {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_app(parameterized_adl());
        ctx.create_app_config(
            orca::AppConfig::new("cfg", "Parameterized").param("flavor", "vanilla"),
        )
        .unwrap();
        ctx.request_start("cfg").unwrap();
    }
}

#[test]
fn submission_param_substitution_reaches_operator() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("GP"),
        Box::new(GoodParamLogic),
    );
    world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(3));
    let job = world.kernel.sam.running_jobs()[0];
    let info = world.kernel.sam.job(job).unwrap();
    // The placeholder was replaced in the submitted ADL.
    assert_eq!(
        info.adl.operator("src").unwrap().params["payload"],
        sps_model::Value::Str("vanilla".into())
    );
}

/// The §7 journal extension: transactions tie events to actuations.
struct JournaledLogic;

impl Orchestrator for JournaledLogic {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_event_scope(orca::PeFailureScope::new("f"));
        ctx.submit_app("Overload").unwrap();
    }
    fn on_pe_failure(&mut self, ctx: &mut OrcaCtx<'_>, e: &orca::PeFailureContext, _s: &[String]) {
        let _ = ctx.restart_pe(e.pe);
        ctx.set_status("last_failure", &e.pe.to_string());
    }
}

#[test]
fn journal_associates_actuations_with_event_transactions() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("J").app(overload_adl()),
        Box::new(JournaledLogic),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(1));
    let job = world.kernel.sam.running_jobs()[0];
    let pe = world.kernel.pe_id_of(job, 0).unwrap();
    world.kernel.kill_pe(pe).unwrap();
    world.run_for(SimDuration::from_secs(1));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let journal = svc.journal();
    assert!(!journal.is_empty());
    let failure_entry = journal
        .iter()
        .find(|e| e.event.starts_with("peFailure"))
        .expect("failure event journaled");
    // The restart actuation is tied to the failure event's transaction.
    assert!(failure_entry
        .actuations
        .iter()
        .any(|a| a.starts_with("restart(")));
    // Transaction ids are unique and monotonically increasing.
    let txns: Vec<u64> = journal.iter().map(|e| e.txn).collect();
    assert!(txns.windows(2).all(|w| w[0] < w[1]));
}

/// §4.2: "The ORCA service delivers each event only once, even when the
/// event matches more than one subscope" — with all matching keys attached.
#[derive(Default)]
struct OverlapLogic {
    deliveries: Vec<(String, u64, Vec<String>)>,
}

impl Orchestrator for OverlapLogic {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        // Two subscopes that both match the sink's nTuplesProcessed metric.
        ctx.register_event_scope(
            OperatorMetricScope::new("byInstance").add_operator_instance("snk"),
        );
        ctx.register_event_scope(
            OperatorMetricScope::new("byMetric").add_metric("nTuplesProcessed"),
        );
        ctx.set_metric_poll_period(SimDuration::from_secs(3));
        ctx.submit_app("Overload").unwrap();
    }

    fn on_operator_metric(
        &mut self,
        _ctx: &mut OrcaCtx<'_>,
        e: &OperatorMetricContext,
        scopes: &[String],
    ) {
        self.deliveries.push((
            format!("{}:{}", e.instance_name, e.metric),
            e.epoch,
            scopes.to_vec(),
        ));
    }
}

#[test]
fn overlapping_subscopes_deliver_once_with_all_keys() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("Ov").app(overload_adl()),
        Box::new(OverlapLogic::default()),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(8));
    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<OverlapLogic>().unwrap();
    assert!(!logic.deliveries.is_empty());
    // The doubly-matched event appears exactly once per epoch, with both
    // subscope keys.
    let doubly: Vec<_> = logic
        .deliveries
        .iter()
        .filter(|(what, _, _)| what == "snk:nTuplesProcessed")
        .collect();
    assert!(!doubly.is_empty());
    let mut epochs_seen = std::collections::BTreeSet::new();
    for (_, epoch, scopes) in &doubly {
        assert!(
            epochs_seen.insert(*epoch),
            "duplicate delivery in epoch {epoch}"
        );
        assert_eq!(
            scopes,
            &vec!["byInstance".to_string(), "byMetric".to_string()]
        );
    }
    // Singly-matched events carry a single key.
    assert!(logic
        .deliveries
        .iter()
        .any(|(what, _, scopes)| what != "snk:nTuplesProcessed" && scopes.len() == 1));
}

/// Port-level and PE-level metric scopes, end to end: the service must
/// convert `MetricKey::OperatorPort` and `MetricKey::Pe` observations into
/// their own event types with correct identities.
#[derive(Default)]
struct PortAndPeObserver {
    port_events: Vec<(String, usize, String, i64)>,
    pe_events: Vec<(u64, String, i64)>,
}

impl Orchestrator for PortAndPeObserver {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_event_scope(
            orca::OperatorPortMetricScope::new("ports")
                .add_operator_instance("work")
                .add_metric("nTuplesProcessed"),
        );
        ctx.register_event_scope(
            orca::PeMetricScope::new("peBytes").add_metric("nTupleBytesProcessed"),
        );
        ctx.set_metric_poll_period(SimDuration::from_secs(3));
        ctx.submit_app("Overload").unwrap();
    }

    fn on_operator_port_metric(
        &mut self,
        _ctx: &mut OrcaCtx<'_>,
        e: &orca::OperatorPortMetricContext,
        scopes: &[String],
    ) {
        assert_eq!(scopes, ["ports".to_string()]);
        self.port_events
            .push((e.instance_name.clone(), e.port, e.metric.clone(), e.value));
    }

    fn on_pe_metric(
        &mut self,
        _ctx: &mut OrcaCtx<'_>,
        e: &orca::PeMetricContext,
        scopes: &[String],
    ) {
        assert_eq!(scopes, ["peBytes".to_string()]);
        self.pe_events.push((e.pe.0, e.metric.clone(), e.value));
    }
}

#[test]
fn port_and_pe_metric_scopes_deliver_end_to_end() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("PP").app(overload_adl()),
        Box::new(PortAndPeObserver::default()),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(10));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<PortAndPeObserver>().unwrap();
    // Port events: only work:0 nTuplesProcessed (the registered filter).
    assert!(!logic.port_events.is_empty());
    for (op, port, metric, value) in &logic.port_events {
        assert_eq!(op, "work");
        assert_eq!(*port, 0);
        assert_eq!(metric, "nTuplesProcessed");
        assert!(*value > 0);
    }
    // PE events: bytes counters for every PE of the job, values grow.
    assert!(!logic.pe_events.is_empty());
    assert!(logic
        .pe_events
        .iter()
        .all(|(_, m, _)| m == "nTupleBytesProcessed"));
    assert!(logic.pe_events.iter().any(|(_, _, v)| *v > 0));
}

/// The Join operator through the full runtime: quotes and trades from two
/// sources joined per symbol across PE boundaries.
#[test]
fn windowed_join_pipeline_end_to_end() {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "quotes",
        OperatorInvocation::new("TickSource")
            .source()
            .param("symbols", 2i64)
            .param("rate", 20.0)
            .param("seed", 5i64),
    );
    m.operator(
        "trades",
        OperatorInvocation::new("TickSource")
            .source()
            .param("symbols", 2i64)
            .param("rate", 20.0)
            .param("seed", 6i64),
    );
    m.operator(
        "join",
        OperatorInvocation::new("Join")
            .ports(2, 1)
            .param("key", "sym")
            .param("window_secs", 2.0),
    );
    m.operator(
        "snk",
        OperatorInvocation::new("Sink")
            .sink()
            .param("keep", 2048i64),
    );
    m.stream("quotes", 0, "join", 0);
    m.stream("trades", 0, "join", 1);
    m.pipe("join", "snk");
    let model = AppModelBuilder::new("JoinApp")
        .build(m.build().unwrap())
        .unwrap();
    let adl = compile(&model, CompileOptions::default()).unwrap();

    let stores = SharedStores::new();
    let mut kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let job = kernel.submit_job(adl, None).unwrap();
    for _ in 0..100 {
        kernel.quantum();
    }
    let out = kernel.tap(job, "snk").unwrap();
    assert!(!out.is_empty(), "join must produce matches across PEs");
    // Joined tuples carry the key plus prefixed collision attributes from
    // both sides (price and ts collide).
    for t in &out {
        assert!(t.get_str("sym").is_some());
        assert!(t.get("l_price").is_some() && t.get("r_price").is_some());
    }
}
