//! Integration: §5.2 replica failover under PE *and* host failures,
//! including the Figure 9 output signature (silent gap, then incorrect
//! output until window refill).

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::trend::{trend_app, TrendOrca, TrendParams};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, PeStatus, RuntimeConfig, World};
use sps_sim::SimDuration;

fn build(window_secs: f64, hosts: usize) -> (World, usize) {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(hosts),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("TrendOrca").app(trend_app(TrendParams {
            window_secs,
            ..Default::default()
        })),
        Box::new(TrendOrca::new(3)),
    );
    let idx = world.add_controller(Box::new(service));
    (world, idx)
}

fn trend(world: &World, idx: usize) -> &TrendOrca {
    world
        .controller::<OrcaService>(idx)
        .unwrap()
        .logic::<TrendOrca>()
        .unwrap()
}

#[test]
fn figure9_output_signature() {
    let (mut world, idx) = build(30.0, 3);
    world.run_for(SimDuration::from_secs(60));

    // Phase A (Figure 9a): identical output across replicas.
    let (r0, r1) = {
        let l = trend(&world, idx);
        (l.replicas[0].job, l.replicas[1].job)
    };
    let tap = |world: &World, job| world.kernel.tap(job, "graph").unwrap_or_default();
    let a0 = tap(&world, r0);
    let a1 = tap(&world, r1);
    assert!(!a0.is_empty());
    assert_eq!(a0, a1, "healthy replicas must render identical graphs");

    // Kill the active replica's calculator PE.
    let victim = world.kernel.pe_id_of(r0, 1).unwrap();
    world.kernel.kill_pe(victim).unwrap();
    let len_at_crash = tap(&world, r0).len();
    world.run_for(SimDuration::from_secs(3));

    // Phase B (Figure 9b): replica 0 produced no output while down (the
    // calculator PE is dead, nothing reaches the sink)…
    assert_eq!(tap(&world, r0).len(), len_at_crash, "silent gap expected");
    // …while replica 1 kept updating.
    assert!(tap(&world, r1).len() > a1.len());
    // Failover happened.
    assert_eq!(trend(&world, idx).active, 1);

    // Phase C: the restarted PE produces *incorrect* output (windows not
    // full) right away…
    world.run_for(SimDuration::from_secs(10));
    let r0_latest = tap(&world, r0);
    let r1_latest = tap(&world, r1);
    let last0 = r0_latest.last().unwrap();
    let last1 = r1_latest.last().unwrap();
    assert_eq!(
        last0.get_bool("full"),
        Some(false),
        "restarted: partial window"
    );
    assert_eq!(last1.get_bool("full"), Some(true));
    // Same instant, same symbol → different (incorrect) statistics, because
    // replica 0's window only covers post-restart ticks.
    let sym0: Vec<_> = r0_latest
        .iter()
        .rev()
        .find(|t| t.get_str("group") == last1.get_str("group"))
        .into_iter()
        .collect();
    if let Some(t0) = sym0.first() {
        assert_ne!(
            t0.get_int("count"),
            last1.get_int("count"),
            "window contents must differ after state loss"
        );
    }

    // Phase D: full recovery after the window span.
    world.run_for(SimDuration::from_secs(40));
    let last0 = tap(&world, r0).last().cloned().unwrap();
    assert_eq!(last0.get_bool("full"), Some(true));
}

#[test]
fn host_failure_fails_over_and_relocates() {
    let (mut world, idx) = build(20.0, 4);
    world.run_for(SimDuration::from_secs(30));
    let active_job = trend(&world, idx).active_job();
    let some_pe = world.kernel.pe_id_of(active_job, 0).unwrap();
    let host = world
        .kernel
        .cluster
        .host_of_pe(some_pe)
        .unwrap()
        .to_string();

    // Losing the host kills all PEs of the active replica at once; the
    // orchestrator receives one failure event per PE (same epoch) and must
    // fail over exactly once.
    world.kernel.kill_host(&host).unwrap();
    world.run_for(SimDuration::from_secs(5));

    let l = trend(&world, idx);
    assert_ne!(l.active, 0);
    // All failure events correlated to one epoch → the logic treated them
    // as one physical event: active switched once, to replica 1.
    assert_eq!(l.active, 1);
    // Every crashed PE got a restart attempt; those that could relocate are
    // up on surviving hosts.
    for f in &l.failovers {
        if let Some(new_pe) = f.restarted_pe {
            assert_eq!(world.kernel.pe_status(new_pe), Some(PeStatus::Up));
            let new_host = world.kernel.cluster.host_of_pe(new_pe).unwrap();
            assert_ne!(new_host, host);
        }
    }
    // The new active keeps producing.
    let out = world
        .kernel
        .tap(l.replicas[1].job, "graph")
        .unwrap_or_default();
    assert!(!out.is_empty());
}

#[test]
fn repeated_failures_never_leave_system_headless() {
    let (mut world, idx) = build(10.0, 3);
    world.run_for(SimDuration::from_secs(20));
    for round in 0..4 {
        let active_job = trend(&world, idx).active_job();
        let pe = world.kernel.pe_id_of(active_job, 1).unwrap();
        world.kernel.kill_pe(pe).unwrap();
        world.run_for(SimDuration::from_secs(15));
        let l = trend(&world, idx);
        // The active replica is always a healthy one.
        let active_job = l.active_job();
        let info = world.kernel.sam.job(active_job).unwrap();
        for &pe in &info.pe_ids {
            assert_eq!(
                world.kernel.pe_status(pe),
                Some(PeStatus::Up),
                "round {round}: active replica must be healthy"
            );
        }
        assert_eq!(l.failovers.len(), round + 1);
    }
}
