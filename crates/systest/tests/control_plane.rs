//! Integration: control-plane fault tolerance (§3 — the middleware itself
//! is crashable). Covers the metastore-backed SAM across `RestartSam`
//! recoveries on all four use-case apps (notification conservation and op-log
//! replay verification), the explicit Unavailable drain path inside a restart
//! window, the memory-vs-replicated metastore differential (campaign reports
//! must be byte-identical with control faults off, at any parallelism), and
//! full control-fault campaigns passing every oracle bit-deterministically.

use orca_harness::{
    run_campaign, scenario, Built, CampaignConfig, CheckpointPolicy, FaultInjector, FaultPlan,
    Janitor, MetastoreKind, Scenario, WorldPolicy,
};
use sps_runtime::World;

fn policy(metastore: MetastoreKind) -> WorldPolicy {
    WorldPolicy {
        checkpoint: CheckpointPolicy::default(),
        metastore,
    }
}

/// Drives one scenario under a fixed fault plan and returns the settled
/// world (same drive sequence the campaign runner uses).
fn settled(sc: &Scenario, plan: &str, seed: u64, metastore: MetastoreKind) -> World {
    let plan = FaultPlan::decode(plan).expect("valid fixed plan");
    let Built { mut world, .. } = (sc.build)(seed, policy(metastore));
    if sc.janitor {
        world.add_controller(Box::new(Janitor::default()));
    }
    world.run_for(sc.warmup);
    world.add_controller(Box::new(FaultInjector::new(plan)));
    world.run_for(sc.fault_window + sc.settle);
    world
}

/// A PE kill to generate failure notifications, a SAM restart, and a second
/// kill landing *inside* the 2 s restart window — the notification queued
/// while SAM is down must survive the recovery replay.
fn restart_plan(sc: &Scenario) -> String {
    let w = sc.warmup.as_millis();
    format!("{}:kp:0:1,{}:rs,{}:kp:0:2", w + 1000, w + 2000, w + 2500)
}

/// Satellite: `notifications_pushed == drained + pending` holds for every
/// orchestrator across a `RestartSam` recovery, on all four apps and on
/// both metastores. Nothing queued while the daemon was down is lost or
/// double-delivered, and replaying the op log reproduces the tables.
#[test]
fn notifications_are_conserved_across_sam_restart_on_every_app() {
    for sc in scenario::all() {
        for kind in [MetastoreKind::Memory, MetastoreKind::Replicated] {
            let world = settled(&sc, &restart_plan(&sc), 0xC7A1_0001, kind);
            let kernel = &world.kernel;
            let stats = kernel.control_stats();
            assert_eq!(
                stats.sam_restarts, 1,
                "[{} {kind}] restart did not complete",
                sc.name
            );
            assert!(
                kernel.sam.is_available(),
                "[{} {kind}] SAM still down after settle",
                sc.name
            );
            for orca in kernel.sam.orchestrators() {
                let pushed = kernel.sam.notifications_pushed(orca);
                let drained = kernel.sam.notifications_drained(orca);
                let pending = kernel.sam.notifications_pending(orca) as u64;
                assert_eq!(
                    pushed,
                    drained + pending,
                    "[{} {kind}] {orca}: pushed={pushed} drained={drained} pending={pending}",
                    sc.name
                );
            }
            // `live` runs unmanaged pipelines (no orchestrator), so only the
            // managed apps are required to have exercised the queues.
            if !kernel.sam.orchestrators().is_empty() {
                assert!(
                    kernel.sam.total_notifications_pushed() > 0,
                    "[{} {kind}] plan generated no notifications",
                    sc.name
                );
            }
            assert!(
                kernel.sam.metastore_verify(),
                "[{} {kind}] op-log replay does not reproduce the tables",
                sc.name
            );
            // The replicated store actually replayed its log on recovery.
            if kind == MetastoreKind::Replicated {
                assert!(
                    stats.meta_ops_replayed > 0,
                    "[{}] replicated recovery replayed nothing",
                    sc.name
                );
            }
        }
    }
}

/// Satellite: `drain_notifications` during a SAM restart window is the
/// explicit Unavailable path — it returns empty without draining or
/// counting, and the queued notifications stay durable for after recovery.
#[test]
fn drains_during_restart_window_are_empty_and_uncounted() {
    let sc = scenario::trend();
    let plan = FaultPlan::decode(&restart_plan(&sc)).unwrap();
    let Built { mut world, .. } = (sc.build)(0xC7A1_0002, policy(MetastoreKind::Replicated));
    world.run_for(sc.warmup);
    world.add_controller(Box::new(FaultInjector::new(plan)));
    // Land inside the restart window: the `rs` fires at warmup+2000 and the
    // window is the 2 s control restart delay.
    world.run_for(sps_sim::SimDuration::from_millis(2100));
    assert!(
        !world.kernel.sam.is_available(),
        "expected to observe the restart window"
    );
    let orcas = world.kernel.sam.orchestrators();
    assert!(!orcas.is_empty());
    for orca in orcas {
        let drained_before = world.kernel.sam.notifications_drained(orca);
        let pending_before = world.kernel.sam.notifications_pending(orca);
        assert!(
            world.kernel.sam.drain_notifications(orca).is_empty(),
            "drain during restart window must return empty"
        );
        assert_eq!(
            world.kernel.sam.notifications_drained(orca),
            drained_before,
            "unavailable drain must not count"
        );
        assert_eq!(
            world.kernel.sam.notifications_pending(orca),
            pending_before,
            "unavailable drain must not consume the queue"
        );
    }
    // After the window the daemon serves again and conservation holds.
    world.run_for(sc.fault_window + sc.settle);
    assert!(world.kernel.sam.is_available());
    for orca in world.kernel.sam.orchestrators() {
        assert_eq!(
            world.kernel.sam.notifications_pushed(orca),
            world.kernel.sam.notifications_drained(orca)
                + world.kernel.sam.notifications_pending(orca) as u64,
            "{orca}: conservation broken after recovery"
        );
    }
}

fn cfg(metastore: MetastoreKind, control_faults: bool, jobs: usize) -> CampaignConfig {
    CampaignConfig {
        plans: 4,
        seed: 0xC7A1_C0DE,
        check_determinism: true,
        max_failures: 3,
        metastore,
        control_faults,
        jobs,
        ..Default::default()
    }
}

/// Tentpole acceptance: with control faults off the metastore choice is
/// execution-invisible — the rendered campaign report is byte-identical
/// between the memory and replicated stores, sequentially and sharded.
#[test]
fn metastore_choice_is_byte_invisible_with_control_faults_off() {
    for sc in scenario::all() {
        let memory = run_campaign(&sc, &cfg(MetastoreKind::Memory, false, 1)).render();
        let replicated = run_campaign(&sc, &cfg(MetastoreKind::Replicated, false, 1)).render();
        assert_eq!(
            memory, replicated,
            "[{}] metastore kind leaked into the report",
            sc.name
        );
        let sharded = run_campaign(&sc, &cfg(MetastoreKind::Replicated, false, 8)).render();
        assert_eq!(memory, sharded, "[{}] jobs=8 diverged", sc.name);
    }
}

/// Control-fault campaigns pass every oracle (including the control-plane
/// recovery oracle) on all four apps, and reports are bit-deterministic
/// across re-runs and parallelism.
#[test]
fn control_fault_campaigns_pass_all_oracles_on_every_app() {
    for sc in scenario::all() {
        let a = run_campaign(&sc, &cfg(MetastoreKind::Replicated, true, 1));
        assert_eq!(
            a.plans_failed,
            0,
            "[{}] control campaign failed:\n{}",
            sc.name,
            a.failures
                .iter()
                .map(|f| format!("  {} -> {:?}", f.reproducer, f.violations))
                .collect::<Vec<_>>()
                .join("\n")
        );
        let b = run_campaign(&sc, &cfg(MetastoreKind::Replicated, true, 4));
        assert_eq!(
            a.render(),
            b.render(),
            "[{}] control campaign report not bit-deterministic",
            sc.name
        );
        // The campaign actually injected control faults somewhere.
        assert!(
            a.control.any(),
            "[{}] no control fault fired across the campaign",
            sc.name
        );
    }
}
