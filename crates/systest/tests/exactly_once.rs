//! Integration: exactly-once recovery under upstream backup.
//!
//! The targeted scenario PR 3 lost tuples in: a PE is killed *between* its
//! checkpoint quantum and the next delivery quantum, so everything delivered
//! after the snapshot is in flight when the crash hits. With upstream backup
//! on, senders buffered those deliveries and the kernel replays the gap into
//! the restored PE — tap counts must come back *equal* to the fault-free
//! baseline, not merely bounded by it.

use orca_harness::{
    scenario, Built, CheckpointPolicy, FaultInjector, FaultPlan, Janitor, Scenario, WorldPolicy,
};
use sps_engine::metrics::builtin;
use sps_runtime::{JobId, UbStats, World};
use sps_sim::SimTime;
use std::collections::BTreeMap;

/// Mirrors the harness runner's warmup → fault window → settle drive, but
/// hands the settled world back so the test can read tap counters directly.
fn settled(
    sc: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    opts: CheckpointPolicy,
    horizon_floor: Option<SimTime>,
) -> World {
    let Built { mut world, .. } = (sc.build)(seed, WorldPolicy::checkpointed(opts));
    if sc.janitor {
        world.add_controller(Box::new(Janitor::default()));
    }
    world.run_for(sc.warmup);
    world.add_controller(Box::new(FaultInjector::new(plan.clone())));
    let quantum = world.kernel.config.quantum;
    let mut fault_end = world.now() + sc.fault_window;
    for h in plan.horizon().into_iter().chain(horizon_floor) {
        if h + quantum > fault_end {
            fault_end = h + quantum;
        }
    }
    world.run_until(fault_end);
    let settle_quanta = (sc.settle.as_millis() / quantum.as_millis()) as usize;
    for _ in 0..settle_quanta {
        world.step();
    }
    world
}

/// Cumulative `nTuplesProcessed` for every `(running job, tap)` pair.
fn tap_counts(world: &World, taps: &[&str]) -> BTreeMap<(JobId, String), i64> {
    let kernel = &world.kernel;
    let mut counts = BTreeMap::new();
    for job in kernel.sam.running_jobs() {
        for tap in taps {
            if let Some(n) = kernel.op_metric(job, tap, builtin::N_TUPLES_PROCESSED) {
                counts.insert((job, tap.to_string()), n);
            }
        }
    }
    counts
}

fn ub_policy() -> CheckpointPolicy {
    CheckpointPolicy::every(10).upstream_backup(true)
}

/// Checkpoints land at every 10th quantum (t = k·1000 ms at the 100 ms
/// default quantum); 8050 ms is squarely between the 8000 ms snapshot and
/// the 8100 ms delivery quantum, so the post-snapshot in-flight tuples are
/// exactly what upstream backup must not lose.
///
/// The killed slot is chosen so no *timing-sensitive* operator (a windowed
/// aggregate whose pane emptiness depends on arrival quanta) sits downstream
/// of the replayed gap: mid-pipeline for live/social/trend, the `display`
/// sink itself (slot 5) for sentiment — its upstream aggregate would
/// otherwise shift an emission, which is exactly why `display` is not an
/// `exact_taps` entry for full random campaigns. Sentiment's kill lands at
/// 9050 ms so the aggregate's 10 s periodic emission is in flight during the
/// outage and the replay is non-trivial.
fn kill_between(app: &str) -> &'static str {
    match app {
        "sentiment" => "9050:kp:0:5",
        // Social's first two jobs are single-PE sources with no inbound
        // channels; kill a query job's mid-pipeline PE instead.
        "social" => "8050:kp:2:1",
        _ => "8050:kp:0:1",
    }
}

#[test]
fn in_flight_gap_kill_preserves_tap_equality_on_every_app() {
    for (app, seed) in [
        ("live", 41u64),
        ("sentiment", 42),
        ("social", 43),
        ("trend", 44),
    ] {
        let sc = scenario::by_name(app).unwrap();
        let plan = FaultPlan::decode(kill_between(app)).unwrap();
        let opts = ub_policy();
        let faulted = settled(&sc, seed, &plan, opts, None);
        // The fault-free twin runs to the same horizon so both worlds cover
        // an identical simulated span.
        let baseline = settled(&sc, seed, &FaultPlan::default(), opts, plan.horizon());

        let kill_left_a_mark =
            !faulted.kernel.restart_log().is_empty() || !faulted.kernel.crash_log().is_empty();
        assert!(kill_left_a_mark, "[{app}] the kill never landed");
        let ub: UbStats = faulted.kernel.ub_stats();
        assert!(ub.replayed > 0, "[{app}] no buffered delivery was replayed");

        let base = tap_counts(&baseline, sc.taps);
        let got = tap_counts(&faulted, sc.taps);
        assert!(!base.is_empty(), "[{app}] baseline produced no tap counts");
        for (key, base_count) in &base {
            let Some(faulted_count) = got.get(key) else {
                continue; // job recycled/cancelled: nothing to hold
            };
            assert_eq!(
                faulted_count, base_count,
                "[{app}] tap {key:?}: exactly-once equality violated \
                 (faulted {faulted_count} vs fault-free {base_count})"
            );
        }
    }
}

#[test]
fn same_kill_without_backup_shows_the_gap_the_feature_closes() {
    // Negative control: the identical schedule under plain checkpointing
    // diverges from the fault-free baseline on at least one app's taps —
    // i.e. the equality above is earned by upstream backup, not vacuous.
    let mut any_divergence = false;
    for (app, seed) in [("live", 41u64), ("trend", 44)] {
        let sc = scenario::by_name(app).unwrap();
        let plan = FaultPlan::decode(kill_between(app)).unwrap();
        let opts = CheckpointPolicy::every(10);
        let faulted = settled(&sc, seed, &plan, opts, None);
        let baseline = settled(&sc, seed, &FaultPlan::default(), opts, plan.horizon());
        if tap_counts(&faulted, sc.taps) != tap_counts(&baseline, sc.taps) {
            any_divergence = true;
        }
    }
    assert!(
        any_divergence,
        "plain checkpointing matched the baseline everywhere — the in-flight \
         gap this PR closes is not being exercised"
    );
}
