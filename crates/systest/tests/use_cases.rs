//! Integration: the §5.1 and §5.3 use cases end to end (compressed
//! timescales; the full-scale figure regenerations live in the `fig8` and
//! `fig10` harness binaries).

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::sentiment::{sentiment_app, sentiment_app_embedded, SentimentOrca, SentimentParams};
use orca_apps::social::{composition_descriptor, CompositionOrca};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

#[test]
fn sentiment_use_case_full_cycle() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let params = SentimentParams {
        drift_at_secs: 90.0,
        ..Default::default()
    };
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("SentimentOrca").app(sentiment_app(params)),
        Box::new(SentimentOrca::new(
            stores.clone(),
            SimDuration::from_secs(3),
        )),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(300));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<SentimentOrca>().unwrap();

    // Shape of Figure 8: pre-drift below 1.0, crossing after drift, back
    // below 1.0 after the model refresh.
    let pre_drift: Vec<f64> = logic
        .samples
        .iter()
        .filter(|s| s.at < sps_sim::SimTime::from_secs(85) && s.epoch > 3)
        .map(|s| s.ratio)
        .collect();
    assert!(!pre_drift.is_empty());
    assert!(pre_drift.iter().all(|r| *r < 1.0), "{pre_drift:?}");
    assert!(logic.samples.iter().any(|s| s.ratio > 1.0));
    assert!(logic.samples.last().unwrap().ratio < 1.0);
    assert_eq!(logic.jobs_launched, 1);
    assert_eq!(logic.jobs_completed, 1);
    // Post-adaptation, the model version visible through the metric grew.
    assert!(logic.samples.last().unwrap().model_version >= 2);
}

#[test]
fn orchestrated_and_embedded_variants_reach_the_same_model() {
    // Run both variants on identical workloads; both must converge to a
    // model containing "antenna". The orchestrated variant keeps control
    // logic out of the graph (6 operators vs 7 with op8/op9).
    let orchestrated_ops = sentiment_app(SentimentParams::default()).operators.len();
    let embedded_ops = sentiment_app_embedded(SentimentParams::default())
        .operators
        .len();
    assert_eq!(embedded_ops, orchestrated_ops + 1); // op8 + op9 - agg

    // Embedded run.
    let stores = SharedStores::new();
    stores.cause_model.set(&["flash", "screen"]);
    let mut kernel = Kernel::new(
        Cluster::with_hosts(1),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    kernel
        .submit_job(
            sentiment_app_embedded(SentimentParams {
                drift_at_secs: 60.0,
                ..Default::default()
            }),
            None,
        )
        .unwrap();
    for _ in 0..2500 {
        kernel.quantum();
    }
    assert!(stores
        .cause_model
        .snapshot()
        .known_causes
        .contains(&"antenna".to_string()));
}

#[test]
fn composition_use_case_expands_and_contracts() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(4),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        composition_descriptor(),
        Box::new(CompositionOrca::new(1500)),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(90));

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<CompositionOrca>().unwrap();

    // All five C1/C2 base applications run for the whole experiment.
    let base_running = world
        .kernel
        .sam
        .jobs()
        .filter(|j| j.app_name.contains("Query") || j.app_name.contains("Reader"))
        .count();
    assert_eq!(base_running, 5);
    // The composition expanded at least twice (gender arrives fastest, then
    // age) and contracted after each C3 finished.
    assert!(logic.c3_launched >= 2, "launched {}", logic.c3_launched);
    assert!(logic.c3_completed >= 2, "completed {}", logic.c3_completed);
    // Timeline alternates +/- for AttributeAggregator entries per config.
    let c3_events: Vec<_> = logic
        .timeline
        .iter()
        .filter(|e| e.app_name == "AttributeAggregator")
        .collect();
    assert!(c3_events.len() >= 4);
    // Each launched C3 has a matching cancellation (modulo ones in flight).
    let launches = c3_events.iter().filter(|e| e.submitted).count();
    let cancels = c3_events.iter().filter(|e| !e.submitted).count();
    assert!(launches >= cancels);
    assert!(launches - cancels <= 3);
    // C3 read deduplicated profiles.
    assert!(stores.profile_store.len() > 500);
}

/// The README's determinism claim: the same seed reproduces a full
/// experiment bit-for-bit, including adaptation timing.
#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = || {
        let stores = SharedStores::new();
        let kernel = Kernel::new(
            Cluster::with_hosts(2),
            orca_apps::registry(&stores),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let params = SentimentParams {
            drift_at_secs: 60.0,
            ..Default::default()
        };
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("S").app(sentiment_app(params)),
            Box::new(SentimentOrca::new(
                stores.clone(),
                SimDuration::from_secs(3),
            )),
        );
        let idx = world.add_controller(Box::new(service));
        world.run_for(SimDuration::from_secs(150));
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let logic = svc.logic::<SentimentOrca>().unwrap();
        logic
            .samples
            .iter()
            .map(|s| (s.epoch, s.ratio.to_bits(), s.model_version))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the exact ratio series");
}
