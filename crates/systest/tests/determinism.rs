//! Determinism: the sim crate's stated design requirement is that a seeded
//! run reproduces bit-for-bit. This suite runs the same seeded `World`
//! scenario twice — full §5.2 trend failover, with fault injection and an
//! attached orchestrator — and asserts the complete kernel event trace, the
//! SRM metric snapshots, and the application output are identical.

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::trend::{trend_app, TrendOrca, TrendParams};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, KillTarget, RuntimeConfig, World};
use sps_sim::{SimDuration, SimTime};

/// Runs a fixed scripted scenario from `seed` and returns every observable
/// artifact rendered to strings: the full trace ring, the per-job SRM metric
/// snapshots, and the active replica's tapped output.
fn run_scenario(seed: u64) -> (String, String, String) {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        },
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("TrendOrca").app(trend_app(TrendParams {
            window_secs: 10.0,
            ..Default::default()
        })),
        Box::new(TrendOrca::new(3)),
    );
    let idx = world.add_controller(Box::new(service));

    world.run_for(SimDuration::from_secs(20));

    // Scripted fault injection: kill the active replica's calculator PE at a
    // fixed simulation time, then a whole host a little later.
    let active = {
        let logic = world
            .controller::<OrcaService>(idx)
            .unwrap()
            .logic::<TrendOrca>()
            .unwrap();
        logic.replicas[logic.active].job
    };
    let victim = world.kernel.pe_id_of(active, 1).unwrap();
    world
        .kernel
        .schedule_kill(SimTime::from_secs(22), KillTarget::Pe(victim));
    world
        .kernel
        .schedule_kill(SimTime::from_secs(30), KillTarget::Host("host0".into()));
    world.run_for(SimDuration::from_secs(25));

    let trace = world.kernel.trace.dump();

    let jobs = world.kernel.sam.running_jobs();
    let snapshots = world.kernel.srm.query_jobs(&jobs);
    let metrics = format!("{snapshots:?}");

    let output = jobs
        .iter()
        .map(|&job| {
            format!(
                "{job:?}: {:?}\n",
                world.kernel.tap(job, "graph").unwrap_or_default()
            )
        })
        .collect::<String>();

    (trace, metrics, output)
}

#[test]
fn same_seed_reproduces_bit_identical_run() {
    let (trace_a, metrics_a, output_a) = run_scenario(0xDE7E_2217);
    let (trace_b, metrics_b, output_b) = run_scenario(0xDE7E_2217);

    // The scenario must have actually exercised the system.
    assert!(!trace_a.is_empty(), "scenario produced no trace events");
    assert!(
        trace_a.contains("killed") || trace_a.contains("down"),
        "fault injection left no trace:\n{trace_a}"
    );
    assert!(
        metrics_a.contains("queueSize") || metrics_a.len() > 2,
        "no metrics collected"
    );

    assert_eq!(
        trace_a, trace_b,
        "event traces diverged for identical seeds"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metric snapshots diverged for identical seeds"
    );
    assert_eq!(
        output_a, output_b,
        "application output diverged for identical seeds"
    );
}

#[test]
fn determinism_holds_across_seeds_individually() {
    for seed in [1u64, 42, 0x5EED] {
        let (trace_a, metrics_a, _) = run_scenario(seed);
        let (trace_b, metrics_b, _) = run_scenario(seed);
        assert_eq!(trace_a, trace_b, "trace diverged for seed {seed:#x}");
        assert_eq!(metrics_a, metrics_b, "metrics diverged for seed {seed:#x}");
    }
}
