//! Determinism: the sim crate's stated design requirement is that a seeded
//! run reproduces bit-for-bit. This suite covers all four use-case apps
//! (`live`, `sentiment`, `social`, `trend`) through a shared helper that
//! drives each campaign scenario under a fixed fault plan and compares the
//! complete kernel event trace (text and digest), the SRM metric snapshots,
//! and the application output across runs — plus the original scripted §5.2
//! trend failover with `schedule_kill`.

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::live::stream_taps;
use orca_apps::trend::{trend_app, TrendOrca, TrendParams};
use orca_apps::SharedStores;
use orca_harness::{
    scenario, Built, CheckpointPolicy, FaultInjector, FaultPlan, Janitor, Scenario, WorldPolicy,
};
use sps_runtime::{Cluster, Kernel, KillTarget, RuntimeConfig, World};
use sps_sim::{SimDuration, SimTime};

/// Runs a fixed scripted scenario from `seed` and returns every observable
/// artifact rendered to strings: the full trace ring, the per-job SRM metric
/// snapshots, and the active replica's tapped output.
fn run_scenario(seed: u64) -> (String, String, String) {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        },
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("TrendOrca").app(trend_app(TrendParams {
            window_secs: 10.0,
            ..Default::default()
        })),
        Box::new(TrendOrca::new(3)),
    );
    let idx = world.add_controller(Box::new(service));

    world.run_for(SimDuration::from_secs(20));

    // Scripted fault injection: kill the active replica's calculator PE at a
    // fixed simulation time, then a whole host a little later.
    let active = {
        let logic = world
            .controller::<OrcaService>(idx)
            .unwrap()
            .logic::<TrendOrca>()
            .unwrap();
        logic.replicas[logic.active].job
    };
    let victim = world.kernel.pe_id_of(active, 1).unwrap();
    world
        .kernel
        .schedule_kill(SimTime::from_secs(22), KillTarget::Pe(victim));
    world
        .kernel
        .schedule_kill(SimTime::from_secs(30), KillTarget::Host("host0".into()));
    world.run_for(SimDuration::from_secs(25));

    let trace = world.kernel.trace.dump();

    let jobs = world.kernel.sam.running_jobs();
    let snapshots = world.kernel.srm.query_jobs(&jobs);
    let metrics = format!("{snapshots:?}");

    let output = jobs
        .iter()
        .map(|&job| {
            format!(
                "{job:?}: {:?}\n",
                world.kernel.tap(job, "graph").unwrap_or_default()
            )
        })
        .collect::<String>();

    (trace, metrics, output)
}

#[test]
fn same_seed_reproduces_bit_identical_run() {
    let (trace_a, metrics_a, output_a) = run_scenario(0xDE7E_2217);
    let (trace_b, metrics_b, output_b) = run_scenario(0xDE7E_2217);

    // The scenario must have actually exercised the system.
    assert!(!trace_a.is_empty(), "scenario produced no trace events");
    assert!(
        trace_a.contains("killed") || trace_a.contains("down"),
        "fault injection left no trace:\n{trace_a}"
    );
    assert!(
        metrics_a.contains("queueSize") || metrics_a.len() > 2,
        "no metrics collected"
    );

    assert_eq!(
        trace_a, trace_b,
        "event traces diverged for identical seeds"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metric snapshots diverged for identical seeds"
    );
    assert_eq!(
        output_a, output_b,
        "application output diverged for identical seeds"
    );
}

// ---------------------------------------------------------------------------
// All four apps, via the shared campaign-scenario helper
// ---------------------------------------------------------------------------

/// Shared helper: drives one campaign scenario under a fixed fault plan and
/// returns every observable artifact rendered to strings — the full trace
/// ring plus its digest, and the SRM snapshots + sink-tap contents of every
/// running job.
fn run_app_scenario(sc: &Scenario, plan: &str, seed: u64) -> (String, u64, String) {
    run_app_scenario_opts(sc, plan, seed, CheckpointPolicy::default())
}

fn run_app_scenario_opts(
    sc: &Scenario,
    plan: &str,
    seed: u64,
    opts: CheckpointPolicy,
) -> (String, u64, String) {
    let plan = FaultPlan::decode(plan).expect("valid fixed plan");
    let Built {
        mut world,
        orca_idx: _,
    } = (sc.build)(seed, WorldPolicy::checkpointed(opts));
    if sc.janitor {
        world.add_controller(Box::new(Janitor::default()));
    }
    world.run_for(sc.warmup);
    world.add_controller(Box::new(FaultInjector::new(plan)));
    world.run_for(sc.fault_window + sc.settle);

    let trace = world.kernel.trace.dump();
    let digest = world.kernel.trace.digest();
    // Same rendering the campaign determinism digest folds in, so this
    // suite's coverage tracks the campaign oracle's exactly.
    let outputs = orca_harness::render_artifacts(&world, sc.taps);
    (trace, digest, outputs)
}

/// Fixed plan per scenario: a PE kill, a host kill + revive, and a second
/// PE kill — all inside the scenario's fault window.
fn fixed_plan(sc: &Scenario) -> String {
    let w = sc.warmup.as_millis();
    format!(
        "{}:kp:0:1,{}:kh:1,{}:kp:1:2,{}:rh:1",
        w + 1000,
        w + 3000,
        w + 4000,
        w + 5500
    )
}

#[test]
fn all_four_apps_reproduce_bit_identical_runs() {
    for sc in scenario::all() {
        let plan = fixed_plan(&sc);
        let (trace_a, digest_a, out_a) = run_app_scenario(&sc, &plan, 0x5EED_0001);
        let (trace_b, digest_b, out_b) = run_app_scenario(&sc, &plan, 0x5EED_0001);
        // The plan must have actually exercised the failure machinery.
        assert!(
            trace_a.contains("killed") || trace_a.contains("down"),
            "[{}] fault injection left no trace:\n{trace_a}",
            sc.name
        );
        assert_eq!(trace_a, trace_b, "[{}] traces diverged", sc.name);
        assert_eq!(digest_a, digest_b, "[{}] digests diverged", sc.name);
        assert_eq!(out_a, out_b, "[{}] outputs diverged", sc.name);
        // A different seed must actually change the workload (traces only
        // record lifecycle events, so compare the application artifacts).
        let (_, _, out_c) = run_app_scenario(&sc, &plan, 0x5EED_0002);
        assert_ne!(out_a, out_c, "[{}] seed had no effect", sc.name);
    }
}

/// Checkpoint-enabled runs are just as deterministic: snapshotting and
/// restoring operator state must introduce no run-to-run divergence, and
/// restoring must actually change what the system settles into compared to
/// fresh-state recovery.
#[test]
fn checkpointed_runs_reproduce_bit_identically() {
    let opts = CheckpointPolicy::every(10);
    for sc in scenario::all() {
        let plan = fixed_plan(&sc);
        let (trace_a, digest_a, out_a) = run_app_scenario_opts(&sc, &plan, 0x5EED_0003, opts);
        let (trace_b, digest_b, out_b) = run_app_scenario_opts(&sc, &plan, 0x5EED_0003, opts);
        assert_eq!(trace_a, trace_b, "[{}] ckpt traces diverged", sc.name);
        assert_eq!(digest_a, digest_b, "[{}] ckpt digests diverged", sc.name);
        assert_eq!(out_a, out_b, "[{}] ckpt outputs diverged", sc.name);
        assert!(
            trace_a.contains("state restored from checkpoint"),
            "[{}] no restart restored state:\n{trace_a}",
            sc.name
        );
        // Restore-vs-fresh must be observable in the settled artifacts.
        let (_, _, out_fresh) = run_app_scenario(&sc, &plan, 0x5EED_0003);
        assert_ne!(out_a, out_fresh, "[{}] restore left no mark", sc.name);
    }
}

/// The `live` streaming module itself is deterministic under faults: the
/// sampled tap updates (times, attribution, tuple payloads) reproduce
/// bit-for-bit alongside the kernel trace.
#[test]
fn live_tap_streaming_reproduces_bit_identically() {
    fn streamed(seed: u64) -> (String, u64) {
        let sc = scenario::live();
        let Built { mut world, .. } = (sc.build)(seed, WorldPolicy::default());
        world.add_controller(Box::new(Janitor::default()));
        world.run_for(sc.warmup);
        world.add_controller(Box::new(FaultInjector::new(
            FaultPlan::decode(&fixed_plan(&sc)).unwrap(),
        )));
        let taps: Vec<_> = world
            .kernel
            .sam
            .running_jobs()
            .into_iter()
            .map(|job| (job, "snk".to_string()))
            .collect();
        let until = world.now() + sc.fault_window + sc.settle;
        let rx = stream_taps(&mut world, &taps, SimDuration::from_secs(1), until);
        let rendered: String = rx
            .try_iter()
            .map(|u| format!("[{}] {} {} {:?}\n", u.at, u.job, u.op, u.tuples))
            .collect();
        (rendered, world.kernel.trace.digest())
    }
    let (a, da) = streamed(0xA11CE);
    let (b, db) = streamed(0xA11CE);
    assert!(!a.is_empty(), "no tap updates streamed");
    assert_eq!(a, b, "streamed tap updates diverged");
    assert_eq!(da, db);
}

#[test]
fn determinism_holds_across_seeds_individually() {
    for seed in [1u64, 42, 0x5EED] {
        let (trace_a, metrics_a, _) = run_scenario(seed);
        let (trace_b, metrics_b, _) = run_scenario(seed);
        assert_eq!(trace_a, trace_b, "trace diverged for seed {seed:#x}");
        assert_eq!(metrics_a, metrics_b, "metrics diverged for seed {seed:#x}");
    }
}
