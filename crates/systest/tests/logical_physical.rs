//! Integration: logical vs. physical disambiguation (paper Figures 2/3 and
//! §4.2 inspection queries), end to end through compile → submit → inspect.

use orca::sqlbase::Tables;
use orca::{OperatorMetricScope, OrcaDescriptor, OrcaService};
use orca_apps::SharedStores;
use sps_model::compiler::{compile, CompileOptions, FusionPolicy};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::{Adl, GraphStore};
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

/// The Figure 2 application: two sources each feeding an instance of the
/// split/merge composite, each feeding a sink. With `figure3_tags`, the
/// composite body carries colocation tags; since both instances share the
/// tags, the compiler fuses operators from *different* composite instances
/// into the same PEs while splitting each instance across two PEs — the
/// exact Figure 3 phenomenon.
fn figure2_adl_tagged(fusion: FusionPolicy, figure3_tags: bool) -> Adl {
    let mut c = CompositeGraphBuilder::new("composite1", 1, 1);
    let tag = |inv: OperatorInvocation, t: &str| {
        if figure3_tags {
            inv.colocate(t)
        } else {
            inv
        }
    };
    c.operator(
        "op3",
        tag(OperatorInvocation::new("Split").ports(1, 2), "peA"),
    );
    c.operator("op4", tag(OperatorInvocation::new("Work"), "peA"));
    c.operator("op5", tag(OperatorInvocation::new("Work"), "peB"));
    c.operator(
        "op6",
        tag(OperatorInvocation::new("Merge").ports(2, 1), "peB"),
    );
    c.stream("op3", 0, "op4", 0);
    c.stream("op3", 1, "op5", 0);
    c.stream("op4", 0, "op6", 0);
    c.stream("op5", 0, "op6", 1);
    c.bind_input(0, "op3", 0);
    c.bind_output("op6", 0);

    let mut app = AppModelBuilder::new("Figure2");
    app.add_composite(c.build().unwrap()).unwrap();
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "op1",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 30.0),
    );
    m.operator(
        "op2",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 30.0),
    );
    m.composite("c1", "composite1");
    m.composite("c2", "composite1");
    m.operator("op7", OperatorInvocation::new("Sink").sink());
    m.operator("op8", OperatorInvocation::new("Sink").sink());
    m.pipe("op1", "c1");
    m.pipe("op2", "c2");
    m.pipe("c1", "op7");
    m.pipe("c2", "op8");
    let model = app.build(m.build().unwrap()).unwrap();
    compile(&model, CompileOptions { fusion }).unwrap()
}

fn figure2_adl(fusion: FusionPolicy) -> Adl {
    figure2_adl_tagged(fusion, false)
}

#[test]
fn figure2_app_runs_end_to_end_and_data_reaches_both_sinks() {
    let stores = SharedStores::new();
    let mut kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let job = kernel
        .submit_job(figure2_adl(FusionPolicy::Target(3)), None)
        .unwrap();
    for _ in 0..100 {
        kernel.quantum();
    }
    // Round-robin split + merge: both branches deliver.
    let s7 = kernel.tap(job, "op7").unwrap();
    let s8 = kernel.tap(job, "op8").unwrap();
    assert!(!s7.is_empty(), "c1 pipeline should deliver to op7");
    assert!(!s8.is_empty(), "c2 pipeline should deliver to op8");
}

#[test]
fn compiled_physical_layout_needs_disambiguation() {
    // With shared colocation tags the compiler fuses operators of both
    // composite instances into the same PEs while splitting each instance
    // across two PEs — the paper's Figure 3 premise.
    let adl = figure2_adl_tagged(FusionPolicy::Colocation, true);
    let graph = GraphStore::from_adl(&adl);
    // Both instances share PE peA and PE peB…
    let shared = (0..graph.num_pes()).any(|pe| graph.composites_in_pe(pe).len() > 1);
    assert!(shared, "composite instances must share a PE");
    // …and each instance is split across two PEs.
    assert_eq!(graph.pes_of_composite_instance("c1").len(), 2);
    assert_eq!(graph.pes_of_composite_instance("c2").len(), 2);
    // Same-PE queries disambiguate: c1.op3 and c2.op3 share a PE but have
    // different enclosing composite instances.
    assert_eq!(
        graph.pe_of_operator("c1.op3"),
        graph.pe_of_operator("c2.op3")
    );
    assert_ne!(
        graph.enclosing_composite("c1.op3").unwrap().path,
        graph.enclosing_composite("c2.op3").unwrap().path
    );
    // XML ADL round-trips through serialization at this scale too.
    let restored = Adl::from_xml_str(&adl.to_xml_string()).unwrap();
    assert_eq!(restored, adl);
}

#[test]
fn orchestrator_inspection_disambiguates_composites() {
    struct Inspect {
        report: Vec<(String, Vec<String>)>,
    }
    impl orca::Orchestrator for Inspect {
        fn on_start(&mut self, ctx: &mut orca::OrcaCtx<'_>, _s: &orca::OrcaStartContext) {
            let job = ctx.submit_app("Figure2").unwrap();
            // For each operator of interest ask "which PE?" then "which
            // composites reside in that PE?" (§4.2 inspection queries).
            for op in ["c1.op3", "c2.op3", "op1"] {
                let pe = ctx.pe_of_operator(job, op).unwrap();
                let comps = ctx.composites_in_pe(pe);
                self.report.push((op.to_string(), comps));
            }
            // Enclosing composite of a nested op.
            assert_eq!(
                ctx.enclosing_composite(job, "c1.op4").as_deref(),
                Some("c1")
            );
            assert_eq!(ctx.enclosing_composite(job, "op1"), None);
        }
    }

    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("I").app(figure2_adl(FusionPolicy::Target(3))),
        Box::new(Inspect { report: vec![] }),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_millis(200));
    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<Inspect>().unwrap();
    assert_eq!(logic.report.len(), 3);
    // c1.op3's PE contains composite c1 (at least).
    assert!(logic.report[0].1.contains(&"c1".to_string()));
}

#[test]
fn figure5_scope_equals_recursive_sql_on_compiled_app() {
    let adl = figure2_adl(FusionPolicy::Colocation);
    let graph = GraphStore::from_adl(&adl);
    // Simulated metric snapshot: queueSize for every operator.
    let metrics: Vec<(String, String, i64)> = graph
        .operators()
        .enumerate()
        .map(|(i, o)| (o.name.clone(), "queueSize".to_string(), i as i64))
        .collect();
    let scope = OperatorMetricScope::new("oms")
        .add_composite_type("composite1")
        .add_operator_type("Split")
        .add_operator_type("Merge")
        .add_metric("queueSize");
    let mut via_scope: Vec<String> = metrics
        .iter()
        .filter(|(op, m, _)| scope.matches("Figure2", &graph, op, m))
        .map(|(op, _, _)| op.clone())
        .collect();
    via_scope.sort();
    // Exactly the paper's set: op3/op6 in both instances.
    assert_eq!(via_scope, vec!["c1.op3", "c1.op6", "c2.op3", "c2.op6"]);

    let tables = Tables::from_graph(&graph, &metrics);
    let mut via_sql: Vec<String> = tables
        .recursive_containment_query("queueSize", &["Split", "Merge"], "composite1")
        .into_iter()
        .map(|(op, _)| op)
        .collect();
    via_sql.sort();
    assert_eq!(via_scope, via_sql);
}
