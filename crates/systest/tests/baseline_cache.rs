//! Baseline-cache semantics: memoizing fault-free baselines by their input
//! fingerprint must be invisible in every campaign report — byte-identical
//! with the cache enabled, disabled, warmed, capacity-squeezed, and at any
//! `--jobs` count — while the hit/miss accounting itself stays
//! deterministic so `--timing` numbers are comparable across runs.

use orca_harness::{
    run_campaign_cached, scenario, BaselineCache, CacheStats, CampaignConfig, CampaignReport,
    CheckpointPolicy,
};

/// Canonical whole-report rendering (see `CampaignReport::render`).
fn render_of(report: CampaignReport) -> String {
    report.render()
}

fn cfg(plans: usize, jobs: usize, ckpt: u32) -> CampaignConfig {
    CampaignConfig {
        plans,
        seed: 0xC0FFEE,
        jobs,
        checkpoint: if ckpt > 0 {
            CheckpointPolicy::every(ckpt)
        } else {
            CheckpointPolicy::default()
        },
        ..Default::default()
    }
}

#[test]
fn reports_are_byte_identical_cache_on_vs_off_on_every_app() {
    // Plain and checkpointed, across all four apps: memoization must be
    // pure perf — not a single report byte may depend on it.
    for sc in scenario::all() {
        for ckpt in [0u32, 10] {
            let config = cfg(3, 1, ckpt);
            let cached = render_of(run_campaign_cached(&sc, &config, &BaselineCache::new()));
            let uncached = render_of(run_campaign_cached(
                &sc,
                &config,
                &BaselineCache::disabled(),
            ));
            assert_eq!(
                cached, uncached,
                "[{} ckpt={ckpt}] report depends on the baseline cache",
                sc.name
            );
        }
    }
}

#[test]
fn cache_hit_accounting_is_deterministic_across_jobs() {
    // Per-plan keys are disjoint (unique seeds) and the determinism replay
    // always follows its primary run, so hit/miss totals are a pure
    // function of the campaign — identical at jobs 1 and jobs 4, run to
    // run. One miss per plan (the primary), one hit per plan (the replay).
    let sc = scenario::trend();
    let mut stats: Vec<CacheStats> = Vec::new();
    for jobs in [1usize, 4, 4] {
        let cache = BaselineCache::new();
        let report = run_campaign_cached(&sc, &cfg(4, jobs, 10), &cache);
        assert_eq!(report.plans_failed, 0, "jobs={jobs}");
        stats.push(cache.stats());
    }
    assert_eq!(stats[0], stats[1], "hit accounting depends on --jobs");
    assert_eq!(stats[1], stats[2], "hit accounting is nondeterministic");
    assert_eq!(stats[0], CacheStats { hits: 4, misses: 4 });
}

#[test]
fn warm_cache_reuses_every_baseline_across_repeated_campaigns() {
    // The repeated-campaign regime the memo exists for: a second identical
    // campaign on the same cache computes zero baselines and reports the
    // same bytes.
    let sc = scenario::live();
    let cache = BaselineCache::new();
    let config = cfg(3, 1, 10);
    let first = render_of(run_campaign_cached(&sc, &config, &cache));
    let cold = cache.stats();
    assert_eq!(cold.misses, 3, "one baseline per plan seed");
    let second = render_of(run_campaign_cached(&sc, &config, &cache));
    let warm = cache.stats().since(cold);
    assert_eq!(first, second);
    assert_eq!(warm.misses, 0, "warm campaign recomputed a baseline");
    assert_eq!(warm.hits, 6, "2 lookups per plan (primary + replay)");
    assert_eq!(warm.hit_rate(), 1.0);
}

#[test]
fn capacity_squeezed_cache_still_yields_identical_reports() {
    // A one-entry cache thrashes (plans evict each other) but eviction only
    // costs recomputation — the report must not move by a byte, and the
    // memo must never exceed its bound.
    let sc = scenario::trend();
    let config = cfg(3, 1, 10);
    let tiny = BaselineCache::with_capacity(1);
    let squeezed = render_of(run_campaign_cached(&sc, &config, &tiny));
    let roomy = render_of(run_campaign_cached(&sc, &config, &BaselineCache::new()));
    assert_eq!(squeezed, roomy, "eviction leaked into the report");
    assert!(tiny.len() <= 1, "capacity bound violated");
    // Sequential plans never revisit a key mid-plan, so the replay hit
    // pattern survives even a single-slot memo.
    assert_eq!(tiny.stats(), CacheStats { hits: 3, misses: 3 });
}
