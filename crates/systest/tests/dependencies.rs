//! Integration: the Figure 7 dependency scenario end to end through the
//! world clock — ordered submission with uptime requirements, starvation
//! protection, garbage collection with timeouts, and resurrection.

use orca::{
    AppConfig, JobEventContext, JobEventScope, OrcaCtx, OrcaDescriptor, OrcaError, OrcaService,
    OrcaStartContext, Orchestrator,
};
use orca_apps::SharedStores;
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::Adl;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::{SimDuration, SimTime};

/// Trivial single-source app reused under six names.
fn tiny_app(name: &str) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 5.0),
    );
    let model = AppModelBuilder::new(name)
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

/// The Figure 7 orchestrator: fb/tw/fox/msnbc feed sn (uptime 20) and all
/// (uptime 80); fox is not garbage collectable.
#[derive(Default)]
struct Figure7 {
    timeline: Vec<(SimTime, bool, String)>,
    cancel_fb_error: Option<OrcaError>,
    start_all: bool,
    start_sn: bool,
}

impl Orchestrator for Figure7 {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_event_scope(JobEventScope::new("timeline"));
        for (id, gc) in [
            ("fb", true),
            ("tw", true),
            ("fox", false),
            ("msnbc", true),
            ("sn", true),
            ("all", true),
        ] {
            let mut cfg = AppConfig::new(id, id).gc_timeout(SimDuration::from_secs(5));
            if !gc {
                cfg = cfg.not_garbage_collectable();
            }
            ctx.create_app_config(cfg).unwrap();
        }
        for dep in ["fb", "tw"] {
            ctx.register_dependency("sn", dep, SimDuration::from_secs(20))
                .unwrap();
        }
        for dep in ["fb", "tw", "fox", "msnbc"] {
            ctx.register_dependency("all", dep, SimDuration::from_secs(80))
                .unwrap();
        }
        if self.start_all {
            ctx.request_start("all").unwrap();
        }
        if self.start_sn {
            ctx.request_start("sn").unwrap();
        }
    }

    fn on_job_submitted(&mut self, _ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
        self.timeline
            .push((e.at, true, e.config_id.clone().unwrap_or_default()));
    }

    fn on_job_cancelled(&mut self, ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
        self.timeline
            .push((e.at, false, e.config_id.clone().unwrap_or_default()));
        // The first cancellation observed: try the forbidden fb cancel once.
        if self.cancel_fb_error.is_none() && ctx.running_configs().contains(&"fb".to_string()) {
            self.cancel_fb_error = ctx.request_cancel("fb").err();
        }
    }
}

fn build_world(logic: Figure7) -> (World, usize) {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let mut desc = OrcaDescriptor::new("Figure7Orca");
    for name in ["fb", "tw", "fox", "msnbc", "sn", "all"] {
        desc = desc.app(tiny_app(name));
    }
    let service = OrcaService::submit(&mut world.kernel, desc, Box::new(logic));
    let idx = world.add_controller(Box::new(service));
    (world, idx)
}

fn logic(world: &World, idx: usize) -> &Figure7 {
    world
        .controller::<OrcaService>(idx)
        .unwrap()
        .logic::<Figure7>()
        .unwrap()
}

#[test]
fn submission_schedule_matches_figure7() {
    let (mut world, idx) = build_world(Figure7 {
        start_all: true,
        start_sn: true,
        ..Default::default()
    });
    world.run_for(SimDuration::from_secs(100));
    let l = logic(&world, idx);
    let submitted: Vec<(&str, f64)> = l
        .timeline
        .iter()
        .filter(|(_, up, _)| *up)
        .map(|(t, _, c)| (c.as_str(), t.as_secs_f64()))
        .collect();
    // Roots first, all four within the first quantum round.
    let roots: Vec<&str> = submitted.iter().take(4).map(|(c, _)| *c).collect();
    assert_eq!(roots, vec!["fb", "fox", "msnbc", "tw"]);
    // sn next at ≈ +20 s, all last at ≈ +80 s (the paper's exact numbers).
    assert_eq!(submitted[4].0, "sn");
    assert!(
        (submitted[4].1 - submitted[0].1 - 20.0).abs() < 0.5,
        "{submitted:?}"
    );
    assert_eq!(submitted[5].0, "all");
    assert!(
        (submitted[5].1 - submitted[0].1 - 80.0).abs() < 0.5,
        "{submitted:?}"
    );
    // All six jobs really run.
    assert_eq!(world.kernel.sam.running_jobs().len(), 6);
}

#[test]
fn cancellation_gc_and_starvation_protection() {
    // Extend Figure7 with a user-event-driven cancel script.
    struct CancelLogic {
        inner: Figure7,
        gc_observed: Vec<(SimTime, String)>,
    }
    impl Orchestrator for CancelLogic {
        fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, s: &OrcaStartContext) {
            self.inner.start_all = true;
            self.inner.start_sn = true;
            self.inner.on_start(ctx, s);
            ctx.register_event_scope(orca::UserEventScope::new("cmd"));
        }
        fn on_job_submitted(&mut self, ctx: &mut OrcaCtx<'_>, e: &JobEventContext, s: &[String]) {
            self.inner.on_job_submitted(ctx, e, s);
        }
        fn on_job_cancelled(&mut self, ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
            self.gc_observed
                .push((e.at, e.config_id.clone().unwrap_or_default()));
            let _ = ctx;
        }
        fn on_user_event(
            &mut self,
            ctx: &mut OrcaCtx<'_>,
            e: &orca::UserEventContext,
            _s: &[String],
        ) {
            match e.name.as_str() {
                "cancel_fb" => self.inner.cancel_fb_error = ctx.request_cancel("fb").err(),
                "cancel_sn" => ctx.request_cancel("sn").unwrap(),
                "cancel_all" => ctx.request_cancel("all").unwrap(),
                "restart_sn" => ctx.request_start("sn").unwrap(),
                other => panic!("unknown command {other}"),
            }
        }
    }

    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let mut desc = OrcaDescriptor::new("Figure7Orca");
    for name in ["fb", "tw", "fox", "msnbc", "sn", "all"] {
        desc = desc.app(tiny_app(name));
    }
    let service = OrcaService::submit(
        &mut world.kernel,
        desc,
        Box::new(CancelLogic {
            inner: Figure7::default(),
            gc_observed: vec![],
        }),
    );
    let idx = world.add_controller(Box::new(service));

    // Bring the full graph up (all at +80 s).
    world.run_for(SimDuration::from_secs(90));
    assert_eq!(world.kernel.sam.running_jobs().len(), 6);

    let cmd = |world: &mut World, name: &str| {
        world
            .controller_mut::<OrcaService>(idx)
            .unwrap()
            .inject_user_event(name, Default::default());
        world.step();
    };

    // 1. Cancelling fb is refused: it feeds sn and all.
    cmd(&mut world, "cancel_fb");
    {
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let l = svc.logic::<CancelLogic>().unwrap();
        assert!(matches!(
            l.inner.cancel_fb_error,
            Some(OrcaError::WouldStarve(_))
        ));
    }
    assert_eq!(world.kernel.sam.running_jobs().len(), 6);

    // 2. Cancel sn: its feeders still serve all → nothing GC'd.
    cmd(&mut world, "cancel_sn");
    world.run_for(SimDuration::from_secs(10));
    assert_eq!(world.kernel.sam.running_jobs().len(), 5);

    // 3. Cancel all: fb/tw/msnbc become unused → GC after 5 s; fox is not
    //    collectable and survives.
    cmd(&mut world, "cancel_all");
    world.run_for(SimDuration::from_secs(3));
    // Before the timeout everything upstream still runs (4 jobs: fb tw fox msnbc).
    assert_eq!(world.kernel.sam.running_jobs().len(), 4);
    world.run_for(SimDuration::from_secs(4));
    let remaining: Vec<String> = world
        .kernel
        .sam
        .jobs()
        .map(|j| j.app_name.clone())
        .collect();
    assert_eq!(remaining, vec!["fox".to_string()]);
}

#[test]
fn resurrection_cancels_pending_gc() {
    struct ResurrectLogic {
        inner: Figure7,
    }
    impl Orchestrator for ResurrectLogic {
        fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, s: &OrcaStartContext) {
            self.inner.start_sn = true;
            self.inner.on_start(ctx, s);
            ctx.register_event_scope(orca::UserEventScope::new("cmd"));
        }
        fn on_user_event(
            &mut self,
            ctx: &mut OrcaCtx<'_>,
            e: &orca::UserEventContext,
            _s: &[String],
        ) {
            match e.name.as_str() {
                "cancel_sn" => ctx.request_cancel("sn").unwrap(),
                "restart_sn" => ctx.request_start("sn").unwrap(),
                other => panic!("unknown command {other}"),
            }
        }
    }

    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let mut desc = OrcaDescriptor::new("R");
    for name in ["fb", "tw", "fox", "msnbc", "sn", "all"] {
        desc = desc.app(tiny_app(name));
    }
    let service = OrcaService::submit(
        &mut world.kernel,
        desc,
        Box::new(ResurrectLogic {
            inner: Figure7::default(),
        }),
    );
    let idx = world.add_controller(Box::new(service));
    world.run_for(SimDuration::from_secs(25)); // sn up at +20

    let fb_job_before = world
        .controller::<OrcaService>(idx)
        .unwrap()
        .logic::<ResurrectLogic>()
        .map(|_| ());
    assert!(fb_job_before.is_some());
    let fb_before = {
        let svc = world.controller::<OrcaService>(idx).unwrap();
        svc.status("x"); // no-op; jobs checked via kernel
        world.kernel.sam.running_jobs().len()
    };
    assert_eq!(fb_before, 3); // fb, tw, sn

    // Cancel sn → fb/tw queued for GC (5 s). Restart sn within the window:
    // fb/tw must survive without a restart (same JobIds).
    let jobs_before: Vec<_> = world.kernel.sam.running_jobs();
    world
        .controller_mut::<OrcaService>(idx)
        .unwrap()
        .inject_user_event("cancel_sn", Default::default());
    world.run_for(SimDuration::from_secs(2));
    world
        .controller_mut::<OrcaService>(idx)
        .unwrap()
        .inject_user_event("restart_sn", Default::default());
    world.run_for(SimDuration::from_secs(10));

    let jobs_after: Vec<_> = world.kernel.sam.running_jobs();
    assert_eq!(jobs_after.len(), 3);
    // fb and tw kept their original job ids — no unnecessary restart.
    let kept = jobs_before
        .iter()
        .filter(|j| jobs_after.contains(j))
        .count();
    assert_eq!(kept, 2, "before {jobs_before:?} after {jobs_after:?}");
}
