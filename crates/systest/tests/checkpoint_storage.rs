//! System tests for the checkpoint storage cost model: the all-zero
//! [`StorageModel`] must be byte-invisible (async bookkeeping with zero
//! latency reproduces the synchronous reports bit-for-bit), while nonzero
//! write/restore latency and a finite byte budget must run whole campaigns
//! through the standard oracle set — deferred commits, delayed promotions,
//! sealed-generation fallbacks, and evictions included — without tripping
//! recovery, convergence, or state preservation.

use orca_harness::{
    run_campaign, scenario, CampaignConfig, CampaignReport, CheckpointPolicy, StorageModel,
};

fn render(report: &CampaignReport) -> String {
    report.render()
}

fn cfg(sc_seed: u64, plans: usize, checkpoint: CheckpointPolicy) -> CampaignConfig {
    CampaignConfig {
        plans,
        seed: sc_seed,
        checkpoint,
        ..Default::default()
    }
}

/// A storage model expensive enough to defer every commit past its issue
/// quantum and make restores pay a visible read delay.
fn slow_storage() -> StorageModel {
    StorageModel {
        write_op_ms: 150,
        write_bytes_per_ms: 64,
        restore_op_ms: 150,
        restore_bytes_per_ms: 64,
        ..StorageModel::default()
    }
}

#[test]
fn zero_storage_model_is_byte_invisible() {
    // The async save/commit machinery with an all-zero model must reproduce
    // the pre-storage synchronous reports exactly — this is the identity the
    // campaign CI diff rests on.
    let sc = scenario::live();
    let plain = cfg(0xC0FFEE, 3, CheckpointPolicy::every(10));
    let explicit = cfg(
        0xC0FFEE,
        3,
        CheckpointPolicy::every(10).storage(StorageModel::default()),
    );
    assert_eq!(
        render(&run_campaign(&sc, &plain)),
        render(&run_campaign(&sc, &explicit)),
        "default StorageModel must not perturb a campaign"
    );
}

#[test]
fn write_and_restore_latency_pass_the_oracles() {
    // Deferred commits shift checkpoint coverage and trim points; restore
    // latency delays Up promotions. The recovery/convergence/state oracles
    // must absorb both without violations.
    for sc in [scenario::live(), scenario::trend()] {
        let policy = CheckpointPolicy::every(10).storage(slow_storage());
        let report = run_campaign(&sc, &cfg(7, 3, policy));
        assert_eq!(
            report.plans_failed,
            0,
            "[{}] storage latency tripped an oracle:\n{}",
            sc.name,
            render(&report)
        );
    }
}

#[test]
fn finite_budget_evictions_pass_the_oracles() {
    // A budget far below the working set forces sealing and eviction on
    // every compaction; fresh restarts from evicted chains are a legitimate
    // recovery mode (FreshReason::Evicted), not an oracle violation.
    let sc = scenario::live();
    let policy = CheckpointPolicy::every(5).storage(slow_storage().with_budget(16_384));
    let report = run_campaign(&sc, &cfg(7, 3, policy));
    assert_eq!(
        report.plans_failed,
        0,
        "budget eviction tripped an oracle:\n{}",
        render(&report)
    );
}

#[test]
fn storage_model_reports_are_byte_identical_across_jobs() {
    // The determinism-under-parallelism guarantee extends to the storage
    // model: pending-write queues and eviction order are part of kernel
    // state, not coordinator state, so sharding cannot reorder them.
    let sc = scenario::trend();
    let policy = CheckpointPolicy::every(10).storage(slow_storage().with_budget(32_768));
    let run = |jobs| {
        render(&run_campaign(
            &sc,
            &CampaignConfig {
                jobs,
                ..cfg(0xC0FFEE, 4, policy)
            },
        ))
    };
    assert_eq!(run(1), run(4), "storage-model report depends on --jobs");
}
