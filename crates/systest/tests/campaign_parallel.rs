//! Cross-jobs determinism: a campaign sharded across worker threads
//! (`CampaignConfig::jobs`) must produce a byte-identical report — digest,
//! failure counts, truncation, shrunk plans, reproducer lines — to the same
//! campaign run single-threaded. This is the harness's determinism-under-
//! parallelism guarantee: per-plan seeds are a pure function of
//! `(campaign_seed, plan_index)` and the coordinator folds results in
//! plan-index order, so thread scheduling can never leak into a report.

use orca_harness::{
    plan_seeds, run_campaign, scenario, CampaignConfig, CampaignReport, CheckpointPolicy,
};

/// Canonical whole-report rendering (see `CampaignReport::render`), so
/// `assert_eq!` on it is a byte-identity check over the whole report.
fn render(report: &CampaignReport) -> String {
    report.render()
}

fn cfg(plans: usize, jobs: usize) -> CampaignConfig {
    CampaignConfig {
        plans,
        seed: 0xC0FFEE,
        jobs,
        ..Default::default()
    }
}

#[test]
fn jobs_1_vs_4_reports_are_byte_identical_on_every_app() {
    for sc in scenario::all() {
        let sequential = render(&run_campaign(&sc, &cfg(4, 1)));
        let sharded = render(&run_campaign(&sc, &cfg(4, 4)));
        assert_eq!(
            sequential, sharded,
            "[{}] report depends on --jobs",
            sc.name
        );
    }
}

#[test]
fn checkpointed_reports_are_byte_identical_across_jobs() {
    // The checkpointed path additionally computes a per-plan fault-free
    // baseline on the worker; it must shard just as cleanly.
    for sc in [scenario::live(), scenario::trend()] {
        let ckpt = |jobs| CampaignConfig {
            checkpoint: CheckpointPolicy::every(10),
            ..cfg(2, jobs)
        };
        let sequential = render(&run_campaign(&sc, &ckpt(1)));
        let sharded = render(&run_campaign(&sc, &ckpt(2)));
        assert_eq!(sequential, sharded, "[{}]", sc.name);
    }
}

#[test]
fn broken_oracle_failures_shrink_identically_across_jobs() {
    // Seed 7 over 5 trend plans trips the inverted convergence bound on
    // more than one plan, so with jobs > 1 the sharded shrink path runs
    // distinct failures concurrently — and must still emit the same shrunk
    // reproducers in the same (plan-index) order.
    let broken = |jobs| CampaignConfig {
        plans: 5,
        seed: 7,
        check_determinism: false,
        broken_convergence: true,
        max_failures: 3,
        jobs,
        ..Default::default()
    };
    let sc = scenario::trend();
    let sequential = run_campaign(&sc, &broken(1));
    let sharded = run_campaign(&sc, &broken(4));
    assert!(
        sequential.failures.len() > 1,
        "need >1 failure to exercise concurrent shrinking, got {}",
        sequential.failures.len()
    );
    assert_eq!(render(&sequential), render(&sharded));
}

#[test]
fn failures_truncated_counts_reproducers_dropped_beyond_the_cap() {
    // Same broken-oracle campaign capped at one shrunk failure: the other
    // failing plans must be surfaced as a truncation count, not dropped.
    let config = CampaignConfig {
        plans: 5,
        seed: 7,
        check_determinism: false,
        broken_convergence: true,
        max_failures: 1,
        jobs: 2,
        ..Default::default()
    };
    let report = run_campaign(&scenario::trend(), &config);
    assert_eq!(report.failures.len(), 1);
    assert!(report.failures_truncated > 0, "seed 7 fails >1 of 5 plans");
    assert_eq!(
        report.plans_failed,
        report.failures.len() + report.failures_truncated,
        "every failing plan is either shrunk or counted as truncated"
    );
}

#[test]
fn plan_seeds_are_a_pure_prefix_stable_function_of_index() {
    // Growing the campaign only appends plans — seed i never moves. This is
    // the property that lets workers evaluate plan i without replaying the
    // master stream behind a lock.
    let short = plan_seeds(7, 10);
    let long = plan_seeds(7, 100);
    assert_eq!(short[..], long[..10]);
    assert_ne!(plan_seeds(8, 10), short, "campaign seed must matter");
    let mut dedup = long.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), long.len(), "per-plan seeds collide");
}
