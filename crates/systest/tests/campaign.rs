//! Integration: the fault-injection campaign harness over all four
//! use-case applications — fixed-seed campaigns pass every oracle, reports
//! are bit-deterministic, a deliberately broken oracle demonstrates
//! shrinking down to a 1-minimal reproducible plan, and the
//! checkpoint-recovery regime (`StatePreservation` oracle) holds under
//! targeted stateful-kill schedules and full seeded campaigns.

use orca_harness::{
    default_oracles, evaluate, reproducer_line, run_campaign, scenario, BaselineCache,
    BaselineSource, CampaignConfig, CheckpointPolicy, FaultPlan, WorldPolicy,
};
use sps_sim::SimRng;

fn cfg(plans: usize) -> CampaignConfig {
    CampaignConfig {
        plans,
        seed: 0xC0FFEE,
        check_determinism: true,
        broken_convergence: false,
        max_failures: 3,
        ..Default::default()
    }
}

/// Checkpoint every 10 quanta (1 s at the default 100 ms quantum).
fn ckpt_cfg(plans: usize) -> CampaignConfig {
    CampaignConfig {
        checkpoint: CheckpointPolicy::every(10),
        ..cfg(plans)
    }
}

#[test]
fn fixed_seed_campaigns_pass_all_oracles_on_every_app() {
    for sc in scenario::all() {
        let report = run_campaign(&sc, &cfg(4));
        assert_eq!(report.plans_run, 4);
        assert_eq!(report.plans_failed, 0, "[{}]", sc.name);
        assert!(
            report.failures.is_empty(),
            "[{}] campaign failed:\n{}",
            sc.name,
            report
                .failures
                .iter()
                .map(|f| format!("  {} -> {:?}", f.reproducer, f.violations))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn checkpointed_campaigns_pass_state_preservation_on_every_app() {
    for sc in scenario::all() {
        let report = run_campaign(&sc, &ckpt_cfg(3));
        assert_eq!(
            report.plans_failed,
            0,
            "[{}] checkpointed campaign failed:\n{}",
            sc.name,
            report
                .failures
                .iter()
                .map(|f| format!("  {} -> {:?}", f.reproducer, f.violations))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn campaign_reports_are_bit_deterministic() {
    let sc = scenario::trend();
    let a = run_campaign(&sc, &cfg(3));
    let b = run_campaign(&sc, &cfg(3));
    assert_eq!(a.digest, b.digest, "same seed must fold the same digests");
    assert_eq!(a.failures.len(), b.failures.len());
    // A different seed explores different plans.
    let c = run_campaign(
        &sc,
        &CampaignConfig {
            seed: 0xBEEF,
            ..cfg(3)
        },
    );
    assert_ne!(a.digest, c.digest);
    // Checkpointing changes execution (snapshots restore state), so the
    // same seed under the checkpoint regime folds a different digest — but
    // deterministically so.
    let d = run_campaign(&sc, &ckpt_cfg(3));
    let e = run_campaign(&sc, &ckpt_cfg(3));
    assert_eq!(d.digest, e.digest);
    assert_ne!(a.digest, d.digest);
}

#[test]
fn generated_plans_actually_perturb_the_system() {
    // The trace digest of a faulted run must differ from the fault-free
    // baseline of the same seed — i.e. campaigns exercise real failures.
    let sc = scenario::trend();
    let oracles = default_oracles(false, false, false);
    let seed = 0xDEAD_BEEF_u64;
    let opts = CheckpointPolicy::default();
    let plan = FaultPlan::generate(&mut SimRng::new(seed), &sc.plan_spec());
    assert!(!plan.events.is_empty());
    let cache = BaselineCache::new();
    let (faulted, violations) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        false,
        WorldPolicy::checkpointed(opts),
        BaselineSource::new(&cache, None),
    );
    assert!(violations.is_empty(), "{violations:?}");
    let (baseline, _) = evaluate(
        &sc,
        seed,
        &FaultPlan::default(),
        &oracles,
        false,
        WorldPolicy::checkpointed(opts),
        BaselineSource::new(&cache, None),
    );
    assert_ne!(faulted, baseline, "plan {} left no mark", plan.encode());
}

#[test]
fn broken_oracle_shrinks_to_a_minimal_reproducible_plan() {
    let sc = scenario::trend();
    let config = CampaignConfig {
        plans: 5,
        seed: 7,
        check_determinism: false, // halve the cost; determinism is covered above
        broken_convergence: true,
        max_failures: 1,
        ..Default::default()
    };
    let report = run_campaign(&sc, &config);
    assert!(
        !report.failures.is_empty(),
        "the inverted convergence bound must trip on some plan"
    );
    // Every failing plan is counted, even beyond the shrink cap, and the
    // dropped reproducers are reported rather than silently vanishing.
    assert!(report.plans_failed >= report.failures.len());
    assert_eq!(
        report.failures_truncated,
        report.plans_failed - report.failures.len()
    );
    let f = &report.failures[0];
    assert!(f.violations.iter().any(|v| v.oracle == "convergence"));
    assert!(f.shrunk.events.len() <= f.original.events.len());
    assert!(!f.shrunk.events.is_empty());

    // The reproducer round-trips and still fails.
    let oracles = default_oracles(true, false, false);
    let opts = CheckpointPolicy::default();
    let decoded = FaultPlan::decode(&f.shrunk.encode()).unwrap();
    assert_eq!(decoded, f.shrunk);
    let cache = BaselineCache::new();
    let (_, violations) = evaluate(
        &sc,
        f.plan_seed,
        &decoded,
        &oracles,
        false,
        WorldPolicy::checkpointed(opts),
        BaselineSource::new(&cache, None),
    );
    assert!(!violations.is_empty(), "shrunk plan no longer fails");

    // 1-minimality: removing any single remaining event makes it pass.
    for i in 0..f.shrunk.events.len() {
        let smaller = f.shrunk.without(i);
        let (_, v) = evaluate(
            &sc,
            f.plan_seed,
            &smaller,
            &oracles,
            false,
            WorldPolicy::checkpointed(opts),
            BaselineSource::new(&cache, None),
        );
        assert!(
            v.is_empty(),
            "shrunk plan is not minimal: dropping event {i} still fails ({v:?})"
        );
    }

    // The one-line reproducer carries everything needed for replay.
    assert!(f.reproducer.contains("HARNESS_APP=trend"));
    assert!(f
        .reproducer
        .contains(&format!("HARNESS_SEED={}", f.plan_seed)));
    assert!(f
        .reproducer
        .contains(&format!("HARNESS_PLAN={}", f.shrunk.encode())));
}

// ---------------------------------------------------------------------------
// Stateful-recovery suite: targeted kill schedules against the trend app
// (600 s windows — the §5.2 stateful workload) under checkpointing.
// ---------------------------------------------------------------------------

/// Runs one explicit plan under the checkpoint regime with the
/// `StatePreservation` oracle active and asserts it passes and replays
/// bit-identically (evaluate's built-in determinism replay).
fn assert_stateful_recovery(app: &str, seed: u64, plan: &str) {
    let sc = scenario::by_name(app).unwrap();
    let opts = CheckpointPolicy::every(10);
    let oracles = default_oracles(false, true, false);
    let plan = FaultPlan::decode(plan).unwrap();
    let cache = BaselineCache::new();
    let (digest_a, violations) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        true,
        WorldPolicy::checkpointed(opts),
        BaselineSource::new(&cache, plan.horizon()),
    );
    assert!(
        violations.is_empty(),
        "[{app}] plan {} violated: {violations:?}",
        plan.encode()
    );
    // One baseline computation served the primary run and the determinism
    // replay inside `evaluate`.
    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "[{app}] baseline recomputed");
    assert!(stats.hits >= 1, "[{app}] replay missed the cache");
    // Replaying the whole evaluation reproduces the digest bit-identically
    // (and is itself a pure cache hit for the baseline).
    let (digest_b, _) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        false,
        WorldPolicy::checkpointed(opts),
        BaselineSource::new(&cache, plan.horizon()),
    );
    assert_eq!(digest_a, digest_b);
    assert_eq!(cache.stats().misses, 1);
}

#[test]
fn stateful_recovery_kill_windowed_aggregate_mid_window() {
    // Trend slot 1 is the windowed Aggregate (`calc`): kill it mid-window,
    // well past warmup so its sliding windows hold real state.
    assert_stateful_recovery("trend", 11, "8000:kp:0:1");
}

#[test]
fn stateful_recovery_kill_into_restart_gap() {
    // Second kill lands 1 s after the first — inside the 2 s restart gap,
    // while the replacement is still `Starting`.
    assert_stateful_recovery("trend", 12, "8000:kp:0:1,9000:kp:0:1");
}

#[test]
fn stateful_recovery_host_kill_and_revive() {
    // A host dies with everything on it and comes back 4 s later.
    assert_stateful_recovery("trend", 13, "7500:kh:1,11500:rh:1");
}

#[test]
fn stateful_recovery_holds_on_every_app_for_a_pe_kill() {
    for (app, seed) in [
        ("live", 21u64),
        ("sentiment", 22),
        ("social", 23),
        ("trend", 24),
    ] {
        assert_stateful_recovery(app, seed, "8600:kp:0:1");
    }
}

#[test]
fn restored_state_actually_differs_from_fresh_restarts() {
    // The same kill schedule under checkpointing vs. without it must settle
    // into different artifacts: the restored run keeps pre-crash state.
    let sc = scenario::trend();
    let seed = 31u64;
    let plan = FaultPlan::decode("8000:kp:0:1").unwrap();
    let oracles = default_oracles(false, false, false);
    let cache = BaselineCache::new();
    let (fresh, _) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        false,
        WorldPolicy::default(),
        BaselineSource::new(&cache, None),
    );
    let (restored, _) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        false,
        WorldPolicy::checkpointed(CheckpointPolicy::every(10)),
        BaselineSource::new(&cache, None),
    );
    assert_ne!(fresh, restored, "checkpoint restore left no trace");
}

#[test]
fn lossy_restore_is_caught_and_shrinks_to_minimal_reproducer() {
    let sc = scenario::trend();
    let config = CampaignConfig {
        plans: 5,
        seed: 7,
        check_determinism: false,
        max_failures: 1,
        checkpoint: CheckpointPolicy::every(10).lossy(true),
        ..Default::default()
    };
    let report = run_campaign(&sc, &config);
    assert!(
        !report.failures.is_empty(),
        "a lossy restore must trip the state oracle on some plan"
    );
    let f = &report.failures[0];
    assert!(
        f.violations.iter().any(|v| v.oracle == "state"),
        "{:?}",
        f.violations
    );
    assert!(!f.shrunk.events.is_empty());

    // 1-minimality under the same lossy regime.
    let opts = CheckpointPolicy::every(10).lossy(true);
    let oracles = default_oracles(false, true, false);
    // Candidates compare against the baseline keyed by the *original*
    // plan's horizon — the same floor-keyed entry the shrink walk used.
    let cache = BaselineCache::new();
    let (_, violations) = evaluate(
        &sc,
        f.plan_seed,
        &f.shrunk,
        &oracles,
        false,
        WorldPolicy::checkpointed(opts),
        BaselineSource::new(&cache, f.original.horizon()),
    );
    assert!(!violations.is_empty(), "shrunk plan no longer fails");
    for i in 0..f.shrunk.events.len() {
        let smaller = f.shrunk.without(i);
        let (_, v) = evaluate(
            &sc,
            f.plan_seed,
            &smaller,
            &oracles,
            false,
            WorldPolicy::checkpointed(opts),
            BaselineSource::new(&cache, f.original.horizon()),
        );
        assert!(
            v.is_empty(),
            "not minimal: dropping event {i} still fails ({v:?})"
        );
    }

    // The reproducer captures the checkpoint policy.
    assert_eq!(
        f.reproducer,
        reproducer_line(
            &sc,
            f.plan_seed,
            &f.shrunk,
            WorldPolicy::checkpointed(opts),
            false
        )
    );
    assert!(f.reproducer.contains("HARNESS_CKPT=10"));
    assert!(f.reproducer.contains("HARNESS_LOSSY=1"));
}
