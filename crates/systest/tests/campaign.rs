//! Integration: the fault-injection campaign harness over all four
//! use-case applications — fixed-seed campaigns pass every oracle, reports
//! are bit-deterministic, and a deliberately broken oracle demonstrates
//! shrinking down to a 1-minimal reproducible plan.

use orca_harness::{default_oracles, evaluate, run_campaign, scenario, CampaignConfig, FaultPlan};
use sps_sim::SimRng;

fn cfg(plans: usize) -> CampaignConfig {
    CampaignConfig {
        plans,
        seed: 0xC0FFEE,
        check_determinism: true,
        broken_convergence: false,
        max_failures: 3,
    }
}

#[test]
fn fixed_seed_campaigns_pass_all_oracles_on_every_app() {
    for sc in scenario::all() {
        let report = run_campaign(&sc, &cfg(4));
        assert_eq!(report.plans_run, 4);
        assert_eq!(report.plans_failed, 0, "[{}]", sc.name);
        assert!(
            report.failures.is_empty(),
            "[{}] campaign failed:\n{}",
            sc.name,
            report
                .failures
                .iter()
                .map(|f| format!("  {} -> {:?}", f.reproducer, f.violations))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn campaign_reports_are_bit_deterministic() {
    let sc = scenario::trend();
    let a = run_campaign(&sc, &cfg(3));
    let b = run_campaign(&sc, &cfg(3));
    assert_eq!(a.digest, b.digest, "same seed must fold the same digests");
    assert_eq!(a.failures.len(), b.failures.len());
    // A different seed explores different plans.
    let c = run_campaign(
        &sc,
        &CampaignConfig {
            seed: 0xBEEF,
            ..cfg(3)
        },
    );
    assert_ne!(a.digest, c.digest);
}

#[test]
fn generated_plans_actually_perturb_the_system() {
    // The trace digest of a faulted run must differ from the fault-free
    // baseline of the same seed — i.e. campaigns exercise real failures.
    let sc = scenario::trend();
    let oracles = default_oracles(false);
    let seed = 0xDEAD_BEEF_u64;
    let plan = FaultPlan::generate(&mut SimRng::new(seed), &sc.plan_spec());
    assert!(!plan.events.is_empty());
    let (faulted, violations) = evaluate(&sc, seed, &plan, &oracles, false);
    assert!(violations.is_empty(), "{violations:?}");
    let (baseline, _) = evaluate(&sc, seed, &FaultPlan::default(), &oracles, false);
    assert_ne!(faulted, baseline, "plan {} left no mark", plan.encode());
}

#[test]
fn broken_oracle_shrinks_to_a_minimal_reproducible_plan() {
    let sc = scenario::trend();
    let config = CampaignConfig {
        plans: 5,
        seed: 7,
        check_determinism: false, // halve the cost; determinism is covered above
        broken_convergence: true,
        max_failures: 1,
    };
    let report = run_campaign(&sc, &config);
    assert!(
        !report.failures.is_empty(),
        "the inverted convergence bound must trip on some plan"
    );
    // Every failing plan is counted, even beyond the shrink cap.
    assert!(report.plans_failed >= report.failures.len());
    let f = &report.failures[0];
    assert!(f.violations.iter().any(|v| v.oracle == "convergence"));
    assert!(f.shrunk.events.len() <= f.original.events.len());
    assert!(!f.shrunk.events.is_empty());

    // The reproducer round-trips and still fails.
    let oracles = default_oracles(true);
    let decoded = FaultPlan::decode(&f.shrunk.encode()).unwrap();
    assert_eq!(decoded, f.shrunk);
    let (_, violations) = evaluate(&sc, f.plan_seed, &decoded, &oracles, false);
    assert!(!violations.is_empty(), "shrunk plan no longer fails");

    // 1-minimality: removing any single remaining event makes it pass.
    for i in 0..f.shrunk.events.len() {
        let smaller = f.shrunk.without(i);
        let (_, v) = evaluate(&sc, f.plan_seed, &smaller, &oracles, false);
        assert!(
            v.is_empty(),
            "shrunk plan is not minimal: dropping event {i} still fails ({v:?})"
        );
    }

    // The one-line reproducer carries everything needed for replay.
    assert!(f.reproducer.contains("HARNESS_APP=trend"));
    assert!(f
        .reproducer
        .contains(&format!("HARNESS_SEED={}", f.plan_seed)));
    assert!(f
        .reproducer
        .contains(&format!("HARNESS_PLAN={}", f.shrunk.encode())));
}
