//! Integration-test host crate.
//!
//! This crate holds no library code of its own: it exists so the top-level
//! cross-crate integration suites (`tests/`) and the runnable walkthroughs
//! (`examples/`) have a Cargo package that depends on every layer of the
//! system — sim, model, engine, runtime, orca, and the use-case apps.
