//! Property tests for [`sps_sim::Scheduler`] — the determinism-critical
//! pending-event queue under the runtime kernel and the fault-injection
//! harness:
//!
//! 1. a cancelled ticket is never yielded by `pop` (cancel-then-pop),
//! 2. pop order is non-decreasing in time regardless of insertion order,
//! 3. events at the same `SimTime` fire in insertion order (FIFO tie-break).

use proptest::prelude::*;
use sps_sim::{Scheduler, SimTime, TicketId};

/// A scripted interaction: event times (in insertion order) plus the indices
/// of the insertions to cancel before draining.
fn arb_script() -> impl Strategy<Value = (Vec<u64>, Vec<usize>)> {
    (
        prop::collection::vec(0u64..50, 1..64),
        prop::collection::vec(0usize..64, 0..32),
    )
}

proptest! {
    #[test]
    fn cancelled_tickets_never_pop(script in arb_script()) {
        let (times, cancels) = script;
        let mut s = Scheduler::new();
        let tickets: Vec<TicketId> = times
            .iter()
            .map(|&t| s.schedule_at(SimTime::from_millis(t), t))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for &c in &cancels {
            if let Some(&ticket) = tickets.get(c) {
                // First cancel of a pending ticket succeeds; re-cancelling
                // the same ticket must report false.
                let fresh = cancelled.insert(ticket);
                prop_assert_eq!(s.cancel(ticket), fresh);
            }
        }
        let mut popped = Vec::new();
        while let Some(ev) = s.pop() {
            prop_assert!(
                !cancelled.contains(&ev.ticket),
                "cancelled ticket {:?} surfaced",
                ev.ticket
            );
            popped.push(ev.ticket);
        }
        // Everything not cancelled surfaced exactly once.
        let mut expected: Vec<TicketId> = tickets
            .iter()
            .copied()
            .filter(|t| !cancelled.contains(t))
            .collect();
        let mut got = popped.clone();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn pop_order_is_nondecreasing_in_time(times in prop::collection::vec(0u64..1000, 1..128)) {
        let mut s = Scheduler::new();
        for &t in &times {
            s.schedule_at(SimTime::from_millis(t), t);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0usize;
        while let Some(ev) = s.pop() {
            prop_assert!(ev.at >= last, "time went backwards: {} after {}", ev.at, last);
            // The clock follows the popped event.
            prop_assert_eq!(s.now(), ev.at);
            // The payload matches the scheduled instant.
            prop_assert_eq!(SimTime::from_millis(ev.payload), ev.at);
            last = ev.at;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn equal_times_fire_in_insertion_order(
        groups in prop::collection::vec((0u64..8, 1usize..6), 1..16)
    ) {
        // Interleave insertions across a handful of distinct instants; the
        // per-instant subsequence of pops must preserve insertion order.
        let mut s = Scheduler::new();
        let mut seq = 0u64;
        for &(t, count) in &groups {
            for _ in 0..count {
                s.schedule_at(SimTime::from_millis(t), (t, seq));
                seq += 1;
            }
        }
        let mut last_seq_at: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        while let Some(ev) = s.pop() {
            let (t, seq) = ev.payload;
            if let Some(&prev) = last_seq_at.get(&t) {
                prop_assert!(
                    seq > prev,
                    "FIFO violated at t={t}: seq {seq} after {prev}"
                );
            }
            last_seq_at.insert(t, seq);
        }
    }
}
