//! Pending-event queue with stable ordering and cancellation.
//!
//! The scheduler is generic over the event payload `E`; the runtime crate
//! instantiates it with its own event enum. Two events scheduled for the same
//! instant fire in insertion order (a strict requirement for determinism —
//! `BinaryHeap` alone does not provide it, so entries carry a sequence
//! number).

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TicketId(u64);

/// An event popped from the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    pub at: SimTime,
    pub ticket: TicketId,
    pub payload: E,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event scheduler: a clock plus an ordered pending-event set.
pub struct Scheduler<E> {
    now: SimTime,
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: BTreeSet<u64>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: BTreeSet::new(),
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `payload` to fire at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: the simulation is causal and events may
    /// only be produced for the present or future.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> TicketId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?} at={:?}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        TicketId(seq)
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> TicketId {
        self.schedule_at(self.now + after, payload)
    }

    /// Cancels a previously scheduled event. Returns true if the event was
    /// still pending (i.e. this call prevented it from firing).
    pub fn cancel(&mut self, ticket: TicketId) -> bool {
        if ticket.0 >= self.next_seq {
            return false;
        }
        // We cannot remove from the middle of a BinaryHeap; record the seq and
        // skip it at pop time. The set is drained as entries surface.
        self.cancelled.insert(ticket.0)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            return Some(ScheduledEvent {
                at: entry.at,
                ticket: TicketId(entry.seq),
                payload: entry.payload,
            });
        }
        None
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries from the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(30), "c");
        s.schedule_at(SimTime::from_millis(10), "a");
        s.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_fires_in_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            s.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(100), "first");
        assert_eq!(s.pop().unwrap().payload, "first");
        s.schedule_after(SimDuration::from_millis(50), "second");
        let ev = s.pop().unwrap();
        assert_eq!(ev.at, SimTime::from_millis(150));
        assert_eq!(ev.payload, "second");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_millis(100), ());
        s.pop();
        s.schedule_at(SimTime::from_millis(50), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut s = Scheduler::new();
        let t1 = s.schedule_at(SimTime::from_millis(10), "a");
        s.schedule_at(SimTime::from_millis(20), "b");
        assert!(s.cancel(t1));
        assert_eq!(s.pending(), 1);
        assert_eq!(s.pop().unwrap().payload, "b");
        assert!(s.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        let mut s = Scheduler::new();
        let t = s.schedule_at(SimTime::from_millis(10), ());
        assert!(s.cancel(t));
        assert!(!s.cancel(t)); // the set already contains it? removed at pop; second insert returns false
        assert!(!s.cancel(TicketId(999)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut s = Scheduler::new();
        let t1 = s.schedule_at(SimTime::from_millis(10), "a");
        s.schedule_at(SimTime::from_millis(20), "b");
        s.cancel(t1);
        assert_eq!(s.peek_time(), Some(SimTime::from_millis(20)));
        assert_eq!(s.pop().unwrap().payload, "b");
        assert_eq!(s.peek_time(), None);
    }

    #[test]
    fn pending_counts_exclude_cancelled() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_millis(1), 1);
        s.schedule_at(SimTime::from_millis(2), 2);
        assert_eq!(s.pending(), 2);
        s.cancel(a);
        assert_eq!(s.pending(), 1);
        assert!(!s.is_empty());
        s.pop();
        assert!(s.is_empty());
    }
}
