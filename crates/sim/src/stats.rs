//! Streaming statistics used by benchmark harnesses and the experiment
//! binaries (percentile latencies, throughput summaries).

/// Welford-style online mean/variance plus min/max.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width linear histogram with an overflow bucket, plus exact
/// percentile estimation within bucket resolution.
#[derive(Clone, Debug)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bucket_width` is the value span of each bucket; `num_buckets` the
    /// number of in-range buckets before overflow.
    pub fn new(bucket_width: f64, num_buckets: usize) -> Self {
        assert!(bucket_width > 0.0 && num_buckets > 0);
        Histogram {
            bucket_width,
            buckets: vec![0; num_buckets],
            overflow: 0,
            total: 0,
        }
    }

    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value < 0.0 {
            self.buckets[0] += 1;
            return;
        }
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Value at quantile `q` in `[0, 1]`, reported as the upper edge of the
    /// containing bucket. Returns the overflow sentinel (`width * buckets`)
    /// when the quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i as f64 + 1.0) * self.bucket_width;
            }
        }
        self.buckets.len() as f64 * self.bucket_width
    }

    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..33] {
            a.record(x);
        }
        for &x in &xs[33..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.99), 99.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 1.0); // rank clamps to 1
    }

    #[test]
    fn histogram_overflow_and_negative() {
        let mut h = Histogram::new(10.0, 5);
        h.record(1000.0);
        h.record(-3.0);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.count(), 2);
        // negative clamps into first bucket
        assert_eq!(h.quantile(0.25), 10.0);
        // overflow sentinel
        assert_eq!(h.quantile(1.0), 50.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }
}
