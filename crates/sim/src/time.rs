//! Logical simulation time.
//!
//! Time is measured in integer milliseconds since the start of a run. The
//! paper quotes all of its intervals in seconds (3 s metric pushes, 15 s
//! orchestrator polls, 600 s sliding windows, 20/80 s uptime requirements),
//! so millisecond resolution is ample while keeping arithmetic exact.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in milliseconds since run start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Raw millisecond value.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    pub const fn as_millis(self) -> u64 {
        self.0
    }

    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by an integer factor.
    pub const fn times(self, n: u64) -> Self {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1000;
        let ms = self.0 % 1000;
        write!(f, "{secs}.{ms:03}s")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1000;
        let ms = self.0 % 1000;
        write!(f, "{secs}.{ms:03}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_millis(), 3000);
        assert_eq!(t.as_secs(), 3);
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(5);
        assert_eq!(t + d, SimTime::from_secs(15));
        assert_eq!(SimTime::from_secs(15) - t, d);
        // Subtraction saturates rather than panicking: failure detectors may
        // observe timestamps slightly out of order across components.
        assert_eq!(t - SimTime::from_secs(20), SimDuration::ZERO);
    }

    #[test]
    fn duration_ops() {
        let d = SimDuration::from_millis(250);
        assert_eq!(d.times(4), SimDuration::from_secs(1));
        assert_eq!(d + d, SimDuration::from_millis(500));
        assert_eq!(d - SimDuration::from_millis(300), SimDuration::ZERO);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1234).to_string(), "1.234s");
        assert_eq!(SimDuration::from_millis(80_000).to_string(), "80.000s");
        assert_eq!(format!("{:?}", SimTime::from_millis(7)), "t+7ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_secs(20) < SimDuration::from_secs(80));
    }
}
