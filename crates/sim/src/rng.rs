//! Seedable deterministic RNG for workload generation.
//!
//! A thin wrapper over `rand`'s xoshiro-style `SmallRng` would tie our
//! determinism to an upstream algorithm change; instead we implement
//! SplitMix64 (for seeding) feeding xoshiro256** directly, so a seed recorded
//! in EXPERIMENTS.md reproduces a run forever. The type still implements
//! `rand::RngCore` so it composes with `rand` distributions.

use rand::RngCore;

/// xoshiro256** seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The raw xoshiro256** state, for checkpointing: a generator rebuilt
    /// with [`SimRng::from_state`] continues the exact same stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from [`SimRng::state`] output.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Derives an independent child stream, e.g. one per source operator, so
    /// adding a consumer of randomness does not perturb other streams.
    pub fn fork(&mut self, stream_tag: u64) -> SimRng {
        let mut sm = self.next_u64() ^ stream_tag.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Uses rejection-free Lemire reduction;
    /// the tiny modulo bias is irrelevant for workload generation.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Bernoulli draw.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (used by the random-walk tick
    /// generator in the Trend Calculator app).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 <= f64::EPSILON {
                continue;
            }
            let u2 = self.next_f64();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }

    /// Picks an index according to the given non-negative weights.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork(100);
        let mut c2 = parent2.fork(100);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = SimRng::new(7).fork(101);
        let same = (0..100)
            .filter(|_| c1.next_u64() == other.next_u64())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = SimRng::new(23);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SimRng::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(10, 15);
            assert!((10..15).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 14;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        SimRng::new(0).gen_range(5, 5);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = r.next_gaussian();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_pick_follows_weights() {
        let mut r = SimRng::new(13);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::new(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(19);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
