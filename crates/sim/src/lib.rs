//! Deterministic discrete-event simulation kernel.
//!
//! Everything in the System S reproduction — the cluster, the runtime daemons
//! (SAM/SRM/HC), the stream engine, and the ORCA orchestrator service — is
//! advanced by a single logical clock defined here. Determinism is a design
//! requirement: every experiment in the paper (Figures 7–10) must be
//! reproducible bit-for-bit from a seed.
//!
//! The kernel provides:
//! - [`SimTime`] / [`SimDuration`]: millisecond-resolution logical time,
//! - [`Scheduler`]: a stable-ordered pending-event queue generic over the
//!   event payload type (the runtime crate defines the payload),
//! - [`SimRng`]: a small, fast, seedable RNG (SplitMix64 / xoshiro256**),
//! - [`stats`]: streaming statistics and fixed-bound histograms used by the
//!   benchmark harnesses,
//! - [`trace`]: a bounded in-memory trace ring used for debugging runs.

pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod time;
pub mod trace;

pub use rng::SimRng;
pub use scheduler::{ScheduledEvent, Scheduler, TicketId};
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use trace::{fnv1a, DigestWriter, TraceEntry, TraceRing, FNV_OFFSET};
