//! Bounded in-memory trace ring.
//!
//! Components append human-readable trace entries tagged with simulation
//! time; the ring keeps the most recent N so long experiment runs stay
//! memory-bounded. Used heavily by integration tests to assert on the
//! ordering of distributed actions (e.g. "failover happened before PE
//! restart").

use crate::time::SimTime;
use std::collections::VecDeque;

/// FNV-1a 64-bit offset basis (digest seed value).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a 64-bit hash state. Shared by
/// [`TraceRing::digest`] and the fault-campaign run digests, so every
/// bit-identity check in the workspace uses one hash definition.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Streams FNV-1a over everything written through `fmt::Write`, so callers
/// can digest a rendering (artifacts, reports) without materializing the
/// intermediate `String`. Digesting chunk-by-chunk is byte-equivalent to
/// hashing the concatenated rendering, because FNV-1a folds one byte at a
/// time with no per-call framing.
#[derive(Clone, Debug)]
pub struct DigestWriter {
    h: u64,
}

impl DigestWriter {
    /// Starts a stream from an existing hash state (chain with [`fnv1a`]).
    pub fn new(h: u64) -> Self {
        DigestWriter { h }
    }

    /// Current hash state.
    pub fn digest(&self) -> u64 {
        self.h
    }
}

impl Default for DigestWriter {
    fn default() -> Self {
        DigestWriter::new(FNV_OFFSET)
    }
}

impl std::fmt::Write for DigestWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.h = fnv1a(self.h, s.as_bytes());
        Ok(())
    }
}

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    pub at: SimTime,
    pub component: &'static str,
    pub message: String,
}

/// Fixed-capacity trace ring.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
    enabled: bool,
}

impl TraceRing {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        TraceRing {
            cap,
            entries: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
            enabled: true,
        }
    }

    /// Disables recording (appends become no-ops); useful in benches.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    pub fn push(&mut self, at: SimTime, component: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            component,
            message: message.into(),
        });
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// All entries whose message contains `needle`, oldest first.
    pub fn find(&self, needle: &str) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.message.contains(needle))
            .collect()
    }

    /// First entry matching `needle`, if any.
    pub fn first_match(&self, needle: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.message.contains(needle))
    }

    /// FNV-1a digest over every retained entry (time, component, message)
    /// plus the dropped count. Two rings digest equal iff their observable
    /// contents are identical — the bit-identical-replay check of the
    /// fault-injection campaign harness compares runs by this value instead
    /// of materialising two full `dump()` strings.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for e in &self.entries {
            h = fnv1a(h, &e.at.as_millis().to_le_bytes());
            h = fnv1a(h, e.component.as_bytes());
            h = fnv1a(h, &[0xFF]);
            h = fnv1a(h, e.message.as_bytes());
            h = fnv1a(h, &[0xFE]);
        }
        fnv1a(h, &self.dropped.to_le_bytes())
    }

    /// Renders the trace as text, one entry per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("[{}] {:>10} {}\n", e.at, e.component, e.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_find() {
        let mut r = TraceRing::new(10);
        r.push(SimTime::from_secs(1), "sam", "job 1 submitted");
        r.push(SimTime::from_secs(2), "srm", "metrics pushed");
        r.push(SimTime::from_secs(3), "sam", "job 1 cancelled");
        assert_eq!(r.len(), 3);
        assert_eq!(r.find("job 1").len(), 2);
        assert_eq!(
            r.first_match("cancelled").unwrap().at,
            SimTime::from_secs(3)
        );
        assert!(r.first_match("nothing").is_none());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(SimTime::from_millis(i), "c", format!("e{i}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let msgs: Vec<_> = r.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn disabled_ring_ignores_pushes() {
        let mut r = TraceRing::new(3);
        r.set_enabled(false);
        r.push(SimTime::ZERO, "c", "x");
        assert!(r.is_empty());
        r.set_enabled(true);
        r.push(SimTime::ZERO, "c", "y");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn digest_tracks_observable_content() {
        let mut a = TraceRing::new(4);
        let mut b = TraceRing::new(4);
        for r in [&mut a, &mut b] {
            r.push(SimTime::from_millis(10), "sam", "x");
            r.push(SimTime::from_millis(20), "srm", "y");
        }
        assert_eq!(a.digest(), b.digest());
        b.push(SimTime::from_millis(30), "srm", "z");
        assert_ne!(a.digest(), b.digest());
        // Same retained entries but a different eviction history differ too.
        let mut c = TraceRing::new(2);
        c.push(SimTime::from_millis(5), "hc", "evicted");
        c.push(SimTime::from_millis(20), "srm", "y");
        c.push(SimTime::from_millis(30), "srm", "z");
        let mut d = TraceRing::new(2);
        d.push(SimTime::from_millis(20), "srm", "y");
        d.push(SimTime::from_millis(30), "srm", "z");
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn digest_writer_streams_identically_to_whole_string_hash() {
        use std::fmt::Write;
        let mut w = DigestWriter::new(fnv1a(FNV_OFFSET, b"prefix"));
        writeln!(w, "{}.snk: {:?}", 1, vec![3u8, 4]).unwrap();
        write!(w, "tail").unwrap();
        let rendered = format!("{}.snk: {:?}\ntail", 1, vec![3u8, 4]);
        let whole = fnv1a(fnv1a(FNV_OFFSET, b"prefix"), rendered.as_bytes());
        assert_eq!(w.digest(), whole);
        assert_eq!(DigestWriter::default().digest(), FNV_OFFSET);
    }

    #[test]
    fn dump_contains_all_lines() {
        let mut r = TraceRing::new(8);
        r.push(SimTime::from_millis(1500), "orca", "event delivered");
        let d = r.dump();
        assert!(d.contains("1.500s"));
        assert!(d.contains("orca"));
        assert!(d.contains("event delivered"));
    }
}
